"""Multiprocess benchmark runner and ``BENCH_*.json`` emission.

The harness fans the selected benchmarks out across worker processes.
Each benchmark builds its own simulated world (its own
:class:`~repro.sim.context.SimContext`, simulator, RNG registry) inside
its worker, so concurrent benchmarks share no state; per-benchmark seeds
are derived from the run's root seed and the benchmark name, so the
sharding — how benchmarks land on workers — cannot change any result,
only the wall time.

Events/sec is measured from the process-global executed-event counter
(:func:`repro.sim.engine.global_events_processed`), which counts every
simulator the benchmark constructs internally.
"""

from __future__ import annotations

import datetime
import json
import multiprocessing
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.bench.schema import SCHEMA_ID, validate_bench_doc
from repro.bench.suite import derive_bench_seed, execute, specs_for
# The tree's single sanctioned wall-clock read (epoch seconds); reused
# here for self-timing so the bench harness adds no new SIM101 escape.
from repro.experiments.run_all import wall_seconds
from repro.sim.engine import SCHEDULER_ENV_VAR, global_events_processed


def utc_stamp() -> Tuple[str, str]:
    """(ISO-8601 creation time, compact filename stamp) in UTC.

    Derived from :func:`wall_seconds` via a pure epoch conversion, so
    the harness stamps its artifacts without its own clock read.
    """
    now = datetime.datetime.fromtimestamp(wall_seconds(), datetime.timezone.utc)
    return now.isoformat(timespec="seconds"), now.strftime("%Y%m%dT%H%M%SZ")


#: One unit of work shipped to a worker process.
_Payload = Tuple[str, str, int, bool, str]


def _worker_run(payload: _Payload) -> Dict[str, Any]:
    """Run one benchmark in this process and measure it."""
    name, kind, seed, quick, scheduler = payload
    os.environ[SCHEDULER_ENV_VAR] = scheduler
    record: Dict[str, Any] = {"name": name, "kind": kind, "seed": seed}
    events_before = global_events_processed()
    started = wall_seconds()
    try:
        headline = execute(name, seed, quick)
    except Exception as exc:  # noqa: BLE001 - one bad bench must not kill the run
        record["status"] = "error"
        record["error"] = f"{type(exc).__name__}: {exc}"
        record["wall_s"] = round(wall_seconds() - started, 4)
        record["events"] = global_events_processed() - events_before
        record["events_per_sec"] = 0.0
        record["headline"] = {}
        return record
    wall = wall_seconds() - started
    events = global_events_processed() - events_before
    record["status"] = "ok"
    record["wall_s"] = round(wall, 4)
    record["events"] = events
    record["events_per_sec"] = round(events / wall, 1) if wall > 0 else 0.0
    record["headline"] = headline
    return record


def run_bench(
    quick: bool = False,
    workers: Optional[int] = None,
    only: Optional[List[str]] = None,
    root_seed: int = 0,
    scheduler: str = "heap",
) -> Dict[str, Any]:
    """Run the suite and return the (schema-valid) benchmark document."""
    specs = specs_for(quick=quick, only=only)
    if workers is None:
        workers = min(4, os.cpu_count() or 1, max(len(specs), 1))

    def payload_for(spec: Any) -> _Payload:
        return (
            spec.name, spec.kind, derive_bench_seed(root_seed, spec.name),
            quick, scheduler,
        )

    # Benchmarks that spawn their own shard workers cannot run inside
    # Pool workers (daemonic processes may not have children) — they run
    # inline in the parent, after the pooled batch.
    pooled = [payload_for(spec) for spec in specs if not spec.own_processes]
    inline = [payload_for(spec) for spec in specs if spec.own_processes]
    order = {spec.name: index for index, spec in enumerate(specs)}
    started = wall_seconds()
    results: List[Dict[str, Any]] = []
    if pooled:
        if workers <= 1 or len(pooled) <= 1:
            inline = pooled + inline
        else:
            # spawn (not fork): each worker is a fresh interpreter, so
            # nothing leaks between the parent's world and the workers'.
            mp = multiprocessing.get_context("spawn")
            with mp.Pool(processes=workers) as pool:
                results.extend(pool.map(_worker_run, pooled))
    if inline:
        # Inline path shares this process: restore the scheduler env var
        # so a bench run can't leak selection into the caller's world.
        previous = os.environ.get(SCHEDULER_ENV_VAR)
        try:
            results.extend(_worker_run(payload) for payload in inline)
        finally:
            if previous is None:
                os.environ.pop(SCHEDULER_ENV_VAR, None)
            else:
                os.environ[SCHEDULER_ENV_VAR] = previous
    results.sort(key=lambda record: order[record["name"]])
    total_wall = wall_seconds() - started
    created, _stamp = utc_stamp()
    total_events = sum(record["events"] for record in results)
    doc: Dict[str, Any] = {
        "schema": SCHEMA_ID,
        "created_utc": created,
        "quick": quick,
        "workers": workers,
        "root_seed": root_seed,
        "scheduler": scheduler,
        "benchmarks": results,
        "totals": {
            "wall_s": round(total_wall, 4),
            "events": total_events,
            "events_per_sec": round(total_events / total_wall, 1)
            if total_wall > 0
            else 0.0,
            "ok": sum(1 for record in results if record["status"] == "ok"),
            "errors": sum(1 for record in results if record["status"] == "error"),
        },
    }
    problems = validate_bench_doc(doc)
    if problems:  # pragma: no cover - harness self-check
        raise RuntimeError(f"bench harness emitted an invalid document: {problems}")
    return doc


def write_bench_doc(doc: Dict[str, Any], out_dir: str = "results") -> str:
    """Write ``doc`` as ``<out_dir>/BENCH_<timestamp>.json``; return the path."""
    os.makedirs(out_dir, exist_ok=True)
    _created, stamp = utc_stamp()
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
