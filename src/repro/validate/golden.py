"""Golden-trace testing: canonical serialization + diff of packet traces.

A :class:`~repro.metrics.tracing.PacketTracer` records every pipeline
event for a sample of messages. This module freezes that output into a
canonical JSON document so runs can be diffed against checked-in goldens:
any change to event ordering, stage routing, core placement, or timing
shows up as a readable diff instead of a silently shifted figure.

Canonicalization rules (what makes two runs comparable):

* flow ids are remapped to dense indexes in ascending creation order —
  the raw ids come from a process-global counter and depend on what else
  ran in the process;
* traces are sorted by (flow, msg); events keep their recorded order;
* timestamps are rounded to a fixed precision so the JSON text is stable.

Golden scenarios deliberately avoid Poisson pacing: sender RNG stream
names incorporate the process-global flow counter (see
docs/architecture.md), so only deterministic arrival processes give
traces that are stable regardless of what ran earlier in the process.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional

SCHEMA_VERSION = 1

#: Decimal places kept on event timestamps (µs). The simulation is
#: bit-deterministic; rounding only guards the JSON text representation.
TIME_PRECISION = 6


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def serialize_traces(tracer, meta: Optional[Dict] = None) -> Dict:
    """Freeze a tracer's recorded traces into a canonical document."""
    traces = tracer.traces(complete_only=False)
    flow_order = sorted({trace.flow_id for trace in traces})
    flow_index = {flow_id: index for index, flow_id in enumerate(flow_order)}
    entries = []
    for trace in sorted(traces, key=lambda t: (flow_index[t.flow_id], t.msg_id)):
        events = [
            [round(event.time_us, TIME_PRECISION), event.kind, event.stage, event.cpu]
            for event in trace.events
        ]
        entries.append(
            {"flow": flow_index[trace.flow_id], "msg": trace.msg_id, "events": events}
        )
    return {"schema": SCHEMA_VERSION, "meta": dict(meta or {}), "traces": entries}


def trace_doc_to_json(doc: Dict) -> str:
    """Canonical JSON text for a trace document (stable key order)."""
    return json.dumps(doc, sort_keys=True, indent=1) + "\n"


def write_golden(path: Path, doc: Dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(trace_doc_to_json(doc))


def load_golden(path: Path) -> Dict:
    return json.loads(Path(path).read_text())


# ----------------------------------------------------------------------
# Diffing
# ----------------------------------------------------------------------
def diff_trace_docs(expected: Dict, actual: Dict, max_messages: int = 20) -> List[str]:
    """Human-readable differences between two trace documents.

    Returns an empty list when the documents are identical (after
    canonicalization). Messages are capped at ``max_messages``.
    """
    diffs: List[str] = []

    def emit(message: str) -> bool:
        """Record one diff; returns False once the cap is reached."""
        if len(diffs) >= max_messages:
            return False
        diffs.append(message)
        return True

    if expected.get("schema") != actual.get("schema"):
        emit(
            f"schema version mismatch: golden {expected.get('schema')} vs "
            f"run {actual.get('schema')}"
        )
        return diffs
    expected_meta = expected.get("meta", {})
    actual_meta = actual.get("meta", {})
    for key in sorted(set(expected_meta) | set(actual_meta)):
        if expected_meta.get(key) != actual_meta.get(key):
            if not emit(
                f"meta[{key!r}]: golden {expected_meta.get(key)!r} vs run "
                f"{actual_meta.get(key)!r}"
            ):
                return diffs

    by_key_expected = {(t["flow"], t["msg"]): t for t in expected.get("traces", [])}
    by_key_actual = {(t["flow"], t["msg"]): t for t in actual.get("traces", [])}
    for key in sorted(set(by_key_expected) - set(by_key_actual)):
        if not emit(f"trace flow={key[0]} msg={key[1]}: in golden but missing from run"):
            return diffs
    for key in sorted(set(by_key_actual) - set(by_key_expected)):
        if not emit(f"trace flow={key[0]} msg={key[1]}: in run but not in golden"):
            return diffs
    for key in sorted(set(by_key_expected) & set(by_key_actual)):
        want = by_key_expected[key]["events"]
        got = by_key_actual[key]["events"]
        if want == got:
            continue
        label = f"trace flow={key[0]} msg={key[1]}"
        if len(want) != len(got):
            if not emit(f"{label}: {len(want)} events in golden vs {len(got)} in run"):
                return diffs
        for index, (w, g) in enumerate(zip(want, got)):
            if list(w) != list(g):
                emit(
                    f"{label} event {index}: golden "
                    f"[t={w[0]} {w[1]}:{w[2]} cpu{w[3]}] vs run "
                    f"[t={g[0]} {g[1]}:{g[2]} cpu{g[3]}]"
                )
                break
        if len(diffs) >= max_messages:
            diffs.append("... diff truncated")
            return diffs
    return diffs


# ----------------------------------------------------------------------
# Golden scenarios (shipped configurations the harness pins down)
# ----------------------------------------------------------------------
def default_golden_dir() -> Path:
    """tests/goldens at the repository root (falls back to the cwd)."""
    repo_root = Path(__file__).resolve().parents[3]
    candidate = repo_root / "tests" / "goldens"
    if candidate.parent.is_dir():
        return candidate
    return Path.cwd() / "tests" / "goldens"


GOLDEN_SCENARIOS = (
    {
        "name": "udp_fixed_vanilla",
        "falcon": False,
        "proto": "udp",
        "message_size": 512,
        "rate_pps": 60_000.0,
    },
    {
        "name": "udp_fixed_falcon",
        "falcon": True,
        "proto": "udp",
        "message_size": 512,
        "rate_pps": 60_000.0,
    },
    {
        "name": "tcp_stream_falcon_split",
        "falcon": True,
        "split_gro": True,
        "proto": "tcp",
        "message_size": 4096,
        "window_msgs": 16,
    },
    # The flow-cache (ONCache) datapath: paced rates so the ordering
    # gate opens and the traces actually take the fastpath stage.
    {
        "name": "udp_fixed_oncache",
        "falcon": False,
        "flowcache": True,
        "proto": "udp",
        "message_size": 512,
        "rate_pps": 60_000.0,
    },
    {
        "name": "udp_fixed_oncache_falcon",
        "falcon": True,
        "flowcache": True,
        "proto": "udp",
        "message_size": 512,
        "rate_pps": 60_000.0,
    },
)


#: Multi-host scenarios run through the sharded engine's record path.
#: Goldens are generated at shards=1 (the reference partition); the
#: shard-equivalence suite then demands byte-identical documents from
#: every other shard count, so these files pin down the cross-shard
#: merge discipline as well as the pipeline itself.
CLUSTER_GOLDEN_SCENARIOS = (
    {
        "name": "cluster_udp_ring_vanilla",
        "kind": "cluster",
        "proto": "udp",
        "num_hosts": 4,
        "message_size": 512,
        "rate_pps": 40_000.0,
        "falcon": False,
    },
    {
        "name": "cluster_udp_ring_falcon",
        "kind": "cluster",
        "proto": "udp",
        "num_hosts": 4,
        "message_size": 512,
        "rate_pps": 40_000.0,
        "falcon": True,
    },
    {
        "name": "cluster_tcp_ring",
        "kind": "cluster",
        "proto": "tcp",
        "num_hosts": 3,
        "message_size": 4096,
        "window_msgs": 8,
        "falcon": False,
    },
    # Full cache lifecycle under the sharded engine: two flows per host
    # thrash a capacity-1 ingress table (miss → hit → evict), then
    # mid-run churn on host 1 invalidates locally and sends RECORD_INVAL
    # to its senders (across a shard boundary at shards > 1).
    {
        "name": "cluster_udp_ring_oncache_churn",
        "kind": "cluster",
        "proto": "udp2",
        "num_hosts": 3,
        "message_size": 512,
        "rate_pps": 40_000.0,
        "rate2_pps": 12_000.0,
        "falcon": False,
        "flowcache": True,
        "flowcache_capacity": 1,
        "churn": [[3500.0, 1]],
    },
)


def run_golden_scenario(spec: Dict, duration_ms: float = 5.0, warmup_ms: float = 2.0) -> Dict:
    """Run one golden scenario with a tracer attached; return its document."""
    from repro.core.config import FalconConfig, FlowCacheConfig
    from repro.metrics.tracing import PacketTracer
    from repro.workloads.sockperf import Testbed

    if spec.get("kind") == "cluster":
        return run_cluster_golden_scenario(spec)
    falcon = None
    if spec.get("falcon"):
        falcon = FalconConfig(split_gro=bool(spec.get("split_gro")))
    flowcache = None
    if spec.get("flowcache"):
        flowcache = FlowCacheConfig(
            capacity=int(spec.get("flowcache_capacity", 128))
        )
    bed = Testbed(
        mode="overlay",
        falcon=falcon,
        flowcache=flowcache,
        seed=int(spec.get("seed", 0)),
    )
    tracer = PacketTracer(sample_every=10, max_messages=64)
    bed.stack.tracer = tracer
    if spec["proto"] == "udp":
        # Constant-rate pacing: deterministic regardless of process state.
        bed.add_udp_flow(spec["message_size"], rate_pps=spec["rate_pps"])
    else:
        bed.add_tcp_flow(spec["message_size"], window_msgs=spec["window_msgs"])
    bed.run(warmup_ms=warmup_ms, measure_ms=duration_ms)
    meta = {key: spec[key] for key in sorted(spec)}
    meta["duration_ms"] = duration_ms
    meta["warmup_ms"] = warmup_ms
    return serialize_traces(tracer, meta=meta)


def cluster_spec_for(spec: Dict, shards_hint: int = 1):
    """Build the ClusterSpec behind one cluster golden scenario."""
    from repro.overlay.cluster import (
        tcp_ring_spec,
        udp_double_ring_spec,
        udp_ring_spec,
    )

    common = dict(
        num_hosts=int(spec["num_hosts"]),
        falcon=bool(spec.get("falcon")),
        seed=int(spec.get("seed", 0)),
        trace=True,
        warmup_us=2000.0,
        duration_us=5000.0,
    )
    if spec.get("flowcache"):
        common["flowcache"] = True
        common["flowcache_capacity"] = int(spec.get("flowcache_capacity", 128))
    if spec.get("churn"):
        common["churn"] = tuple(
            (float(time_us), int(h)) for time_us, h in spec["churn"]
        )
    if spec["proto"] == "udp":
        return udp_ring_spec(
            message_size=spec["message_size"],
            rate_pps=spec["rate_pps"],
            **common,
        )
    if spec["proto"] == "udp2":
        return udp_double_ring_spec(
            message_size=spec["message_size"],
            rate_pps=spec["rate_pps"],
            rate2_pps=spec["rate2_pps"],
            **common,
        )
    return tcp_ring_spec(
        message_size=spec["message_size"],
        window_msgs=spec["window_msgs"],
        **common,
    )


def run_cluster_golden_scenario(spec: Dict, shards: int = 1) -> Dict:
    """Run one cluster scenario at ``shards`` shards; return its trace doc.

    The document is independent of ``shards`` by design — that is the
    sharded engine's core guarantee, and what the equivalence suite
    asserts by diffing this output across shard counts.
    """
    from repro.overlay.cluster import run_cluster

    result = run_cluster(cluster_spec_for(spec), shards=shards)
    doc = result.trace_doc
    assert doc is not None  # trace=True above
    doc["meta"]["name"] = spec["name"]
    return doc


def check_goldens(
    golden_dir: Optional[Path] = None,
    regen: bool = False,
    only: Optional[List[str]] = None,
) -> Dict[str, List[str]]:
    """Compare (or regenerate) every golden scenario.

    Returns ``{scenario name: [diff messages]}`` — empty lists mean a
    clean pass; a missing golden without ``regen`` is itself a failure.
    """
    golden_dir = Path(golden_dir) if golden_dir is not None else default_golden_dir()
    results: Dict[str, List[str]] = {}
    for spec in GOLDEN_SCENARIOS + CLUSTER_GOLDEN_SCENARIOS:
        name = spec["name"]
        if only is not None and name not in only:
            continue
        doc = run_golden_scenario(spec)
        path = golden_dir / f"{name}.json"
        if regen:
            write_golden(path, doc)
            results[name] = []
            continue
        if not path.exists():
            results[name] = [
                f"golden file {path} missing — run `repro validate --regen-goldens`"
            ]
            continue
        results[name] = diff_trace_docs(load_golden(path), doc)
    return results
