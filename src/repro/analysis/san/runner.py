"""File discovery, rule dispatch and suppression for ``repro san``.

Mirrors :mod:`repro.analysis.order.runner` — same file discovery, same
:class:`FileContext`/:class:`Project` model, same pragma machinery and
the same reporters — but runs the ownership rules. All four passes share
one rule-id namespace, so a ``# simlint: disable=OWN601`` pragma is
valid anywhere and no pass flags another's ids as unknown.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.lint.core import (
    FileContext,
    Finding,
    Project,
    Rule,
    meta_findings,
    module_name_for,
)
from repro.analysis.lint.report import LintResult
from repro.analysis.lint.runner import iter_python_files, known_rule_ids
from repro.analysis.san.registry import SAN_RULE_IDS
from repro.analysis.san.rules_cache import CACHE_RULES
from repro.analysis.san.rules_event import EVENT_RULES
from repro.analysis.san.rules_skbown import SKBOWN_RULES

#: Every ownership rule, in catalogue order.
SAN_RULES: Tuple[Rule, ...] = EVENT_RULES + SKBOWN_RULES + CACHE_RULES

assert tuple(rule.id for rule in SAN_RULES) == SAN_RULE_IDS, (
    "san registry out of sync with the rule classes"
)


def san_rule_by_id(rule_id: str) -> Optional[Rule]:
    for rule in SAN_RULES:
        if rule.id == rule_id:
            return rule
    return None


def san_paths(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run the ownership rules over ``paths`` (files or trees).

    Same contract as :func:`repro.analysis.lint.runner.lint_paths`:
    pragmas are applied after rule execution, suppressed findings are
    retained separately for the baseline ratchet, and unknown ids in
    ``rule_ids`` raise ``ValueError``.
    """
    selected: List[Rule]
    if rule_ids is None:
        selected = list(SAN_RULES)
    else:
        selected = []
        for rule_id in rule_ids:
            rule = san_rule_by_id(rule_id)
            if rule is None:
                known = ", ".join(r.id for r in SAN_RULES)
                raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
            selected.append(rule)

    files = [
        FileContext(path, _read(path), module_name_for(path))
        for path in iter_python_files(paths)
    ]
    project = Project(files=files)

    findings: List[Finding] = []
    for rule in selected:
        findings.extend(rule.check_project(project))
    by_path = {ctx.path: ctx for ctx in files}
    for ctx in files:
        findings.extend(meta_findings(ctx, known_rule_ids()))

    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        ctx = by_path.get(finding.path)
        if (
            ctx is not None
            and finding.rule not in ("LINT000", "LINT001")
            and ctx.suppressed(finding.rule, finding.line)
        ):
            suppressed.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return LintResult(
        findings=kept,
        files_checked=len(files),
        rules_run=[rule.id for rule in selected],
        suppressed=suppressed,
    )


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()
