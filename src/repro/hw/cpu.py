"""CPU core model.

A core is a serialized resource executing *work items*. Each work item has
a duration (µs), a label (the kernel function it models, used for
flamegraph accounting) and an execution context. Contexts are dispatched
in strict priority order, mirroring how Linux runs pending hardirqs before
softirqs before user threads on a core:

* ``HARDIRQ`` — NIC interrupt handlers,
* ``SOFTIRQ`` — ``net_rx_action`` / ``process_backlog`` bottom halves,
* ``USER``    — application threads (socket reads, request handling).

Execution is non-preemptive at work-item granularity: work items are short
(sub-µs to a few µs), so this matches the kernel's behaviour closely enough
for the contention effects the paper studies while keeping the simulation
fast.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.metrics.cpuacct import CpuAccounting
from repro.sim.engine import Simulator

#: Execution contexts in dispatch-priority order.
HARDIRQ = 0
SOFTIRQ = 1
USER = 2

_NUM_CONTEXTS = 3

#: Type of a completion callback invoked when a work item finishes.
Completion = Optional[Callable[..., Any]]


class Cpu:
    """A single core: a non-preemptive priority server.

    Work is submitted via :meth:`submit`; when the core is free it picks
    the highest-priority pending item, stays busy for its duration, charges
    the accounting, then invokes the completion callback.
    """

    __slots__ = (
        "sim",
        "index",
        "acct",
        "_queues",
        "_running",
        "busy_us_total",
        "load",
        "_dispatch_scheduled",
        "monitor",
    )

    def __init__(self, sim: Simulator, index: int, acct: CpuAccounting) -> None:
        self.sim = sim
        self.index = index
        self.acct = acct
        self._queues: Tuple[Deque, ...] = tuple(deque() for _ in range(_NUM_CONTEXTS))
        self._running: Optional[tuple] = None
        #: Cumulative busy time, used by the load tracker.
        self.busy_us_total = 0.0
        #: Recent utilization in [0, 1]; refreshed by the kernel timer tick.
        #: This is the per-CPU load Algorithm 1 consults (``cpu.load``).
        self.load = 0.0
        self._dispatch_scheduled = False
        #: Optional :class:`repro.validate.InvariantMonitor` hook (None
        #: when validation is not attached — the common case).
        self.monitor = None

    # ------------------------------------------------------------------
    # Submission & dispatch
    # ------------------------------------------------------------------
    def submit(
        self,
        context: int,
        label: str,
        duration: float,
        fn: Completion = None,
        *args: Any,
    ) -> None:
        """Queue ``duration`` µs of work; call ``fn(*args)`` when it completes."""
        if duration < 0:
            raise ValueError(f"work duration must be >= 0, got {duration}")
        self._queues[context].append((label, duration, fn, args))
        self._maybe_dispatch()

    def submit_multi(
        self,
        context: int,
        charges: "list[Tuple[str, float]]",
        fn: Completion = None,
        *args: Any,
    ) -> None:
        """Queue one work item whose busy time is split across labels.

        A batch of packets processed in one softirq round touches several
        kernel functions; ``charges`` is a list of ``(label, µs)`` pairs
        that are attributed individually while the core stays busy for
        their sum.
        """
        self._queues[context].append((charges, None, fn, args))
        self._maybe_dispatch()

    def _maybe_dispatch(self) -> None:
        if self._running is not None or self._dispatch_scheduled:
            return
        for context in range(_NUM_CONTEXTS):
            queue = self._queues[context]
            if queue:
                item = queue.popleft()
                self._start(context, item)
                return

    def _start(self, context: int, item: tuple) -> None:
        label, duration, fn, args = item
        self._running = item
        if duration is None:
            # Multi-charge item: ``label`` is a list of (label, µs) pairs.
            duration = 0.0
            for sub_label, sub_duration in label:
                self.acct.charge(self.index, context, sub_label, sub_duration)
                duration += sub_duration
        else:
            self.acct.charge(self.index, context, label, duration)
        if self.monitor is not None:
            self.monitor.on_cpu_start(self.index, self.sim.now, duration)
        self.busy_us_total += duration
        # Fire-and-forget: completions are never cancelled, so the event
        # object is recycled through the simulator's freelist.
        self.sim.post(duration, self._complete, fn, args)

    def _complete(self, fn: Completion, args: tuple) -> None:
        self._running = None
        if self.monitor is not None:
            self.monitor.on_cpu_complete(self.index, self.sim.now)
        if fn is not None:
            fn(*args)
        self._maybe_dispatch()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def busy(self) -> bool:
        return self._running is not None

    def queued(self, context: Optional[int] = None) -> int:
        """Number of queued (not yet started) work items."""
        if context is not None:
            return len(self._queues[context])
        return sum(len(queue) for queue in self._queues)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cpu {self.index} load={self.load:.2f} queued={self.queued()}>"
