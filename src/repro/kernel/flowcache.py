"""ONCache-style per-flow fast-path cache (the third datapath).

After the first packet of a flow has traversed the full overlay device
chain (``hoststack_outer`` decap → ``gro_cell_poll`` / ``br_handle_frame``
/ ``veth_xmit`` → container ``netif_rx``), everything that chain computes
— the decap verdict, the bridge FDB result, the veth peer — is flow-
invariant. ONCache memoizes it: a per-flow table consulted at the driver
exit sends subsequent packets straight to the container's protocol tail
through one cheap :data:`~repro.kernel.costs.CostModel.flowcache_fastpath`
step, skipping two whole softirq stages and one backlog hop.

Cache misses (first packet, capacity eviction, explicit invalidation on
container churn) take the slow path unchanged and (re)populate the entry
when the packet completes delivery.

Ordering gate
-------------
A naive cache would let packet *n+1* (hit, two stages skipped) overtake
packet *n* (miss, still riding the device chain) of the same flow — a
reordering vanilla Linux never produces. The table therefore tracks a
per-flow *slow in-flight* count: a hit is only granted while no earlier
packet of the flow is still on the slow path. ``Skb.fastpath`` carries
the per-packet verdict (``None`` = not yet checked, ``0`` = slow, > 0 =
wire segments that took the fast path) so every pipeline exit —
delivery, backlog drop, defrag timeout — can release exactly the slow
reservations it retires.

The gate's typestate is enforced statically by ``repro order``
(ORD521-523): :meth:`FlowTable.access`, :meth:`FlowTable.insert`,
:meth:`FlowTable.hit_or_populate` and :meth:`FlowCache.delivered` are
the *sanctioned* surface — the only places allowed to populate entries
or serve a receive-side hit, precisely because they consult/maintain
``_slow_inflight`` (or, for the TX table, are serialized per flow).
Adding a population or lookup path elsewhere trips the analyzer.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.core.config import FlowCacheConfig
from repro.kernel.costs import CostModel, VXLAN_OVERHEAD
from repro.kernel.skb import FlowKey, Skb
from repro.kernel.stages import Step

#: A flow-table key: the 5-tuple (``FlowKey.tuple()``).
TableKey = Tuple[int, int, int, int, int]


class FlowTable:
    """One direction's flow table: a deterministic LRU over 5-tuples.

    Backed by an :class:`~collections.OrderedDict` — eviction order is a
    pure function of the access sequence, never of hashes or ids, so
    sharded runs stay byte-identical.
    """

    __slots__ = (
        "capacity",
        "_entries",
        "_slow_inflight",
        "hits",
        "misses",
        "evictions",
        "invalidations",
        "inserts",
        "_san",
    )

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[TableKey, int]" = OrderedDict()
        #: Per-flow count of wire segments still riding the slow path.
        self._slow_inflight: Dict[TableKey, int] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.inserts = 0
        #: Ownership ledger hook (REPRO_SANITIZE=1); None in normal runs.
        self._san: Optional[Any] = None
        if os.environ.get("REPRO_SANITIZE"):
            from repro.validate.sanitize import current_ledger

            self._san = current_ledger()

    # ------------------------------------------------------------------
    # Datapath decisions
    # ------------------------------------------------------------------
    def access(self, key: TableKey, segs: int) -> bool:
        """Receive-side decision for one packet of ``segs`` wire segments.

        True grants the fast path (and refreshes the entry's LRU
        position); False sends the packet down the slow path and reserves
        its segments as slow in-flight until an exit hook releases them.
        """
        if key in self._entries and not self._slow_inflight.get(key):
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._slow_inflight[key] = self._slow_inflight.get(key, 0) + segs
        return False

    def hit_or_populate(self, key: TableKey) -> bool:
        """Transmit-side decision: the sender is serialized per flow, so
        a miss populates immediately (no ordering gate needed)."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self.insert(key)
        return False

    # ------------------------------------------------------------------
    # Population and teardown
    # ------------------------------------------------------------------
    def insert(self, key: TableKey) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self.inserts += 1
        self._entries[key] = 1
        if self._san is not None:
            self._san.acquire("flow_entry", (id(self), key), "flowtable.insert")
        while len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            if self._san is not None:
                self._san.release(
                    "flow_entry", (id(self), evicted), "flowtable.evict"
                )

    def slow_done(self, key: TableKey, segs: int) -> None:
        """Release ``segs`` slow-path reservations for ``key``."""
        left = self._slow_inflight.get(key)
        if left is None:
            return
        left -= segs
        if left <= 0:
            del self._slow_inflight[key]
        else:
            self._slow_inflight[key] = left

    def invalidate(self, key: TableKey) -> bool:
        if self._entries.pop(key, None) is not None:
            self.invalidations += 1
            if self._san is not None:
                self._san.release(
                    "flow_entry", (id(self), key), "flowtable.invalidate"
                )
            return True
        return False

    def invalidate_ip(self, ip: int) -> int:
        """Drop every entry whose flow involves ``ip`` (container churn)."""
        stale = [key for key in self._entries if ip in (key[0], key[1])]
        for key in stale:
            del self._entries[key]
            if self._san is not None:
                self._san.release(
                    "flow_entry", (id(self), key), "flowtable.invalidate_ip"
                )
        self.invalidations += len(stale)
        return len(stale)

    def invalidate_all(self) -> int:
        count = len(self._entries)
        if self._san is not None:
            for key in self._entries:
                self._san.release(
                    "flow_entry", (id(self), key), "flowtable.invalidate_all"
                )
        self._entries.clear()
        self.invalidations += count
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, key: TableKey) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list:
        """Current entries, LRU-oldest first (deterministic)."""
        return list(self._entries)

    def slow_inflight(self, key: TableKey) -> int:
        return self._slow_inflight.get(key, 0)


class FlowCache:
    """The per-host cache: one ingress and one egress :class:`FlowTable`."""

    def __init__(self, config: FlowCacheConfig) -> None:
        config.validate()
        self.config = config
        self.ingress = FlowTable(config.capacity)
        self.egress = FlowTable(config.capacity)

    # ------------------------------------------------------------------
    # Datapath entry points
    # ------------------------------------------------------------------
    def access_rx(self, skb: Skb) -> bool:
        """The driver-exit check; stamps ``skb.fastpath`` with the verdict."""
        hit = self.ingress.access(skb.flow.tuple(), skb.segs)
        skb.fastpath = skb.segs if hit else 0
        return hit

    def access_tx(self, flow: FlowKey) -> bool:
        """Sender-side check, per application message."""
        return self.egress.hit_or_populate(flow.tuple())

    # ------------------------------------------------------------------
    # Exit hooks (keep the ordering gate's ledger exact)
    # ------------------------------------------------------------------
    def packet_terminated(self, skb: Skb) -> None:
        """``skb`` left the pipeline (delivered, dropped, unroutable):
        release whatever slow-path reservations it still holds."""
        fast = skb.fastpath
        if fast is None:
            return  # terminated before the cache check (e.g. ring drop)
        slow = skb.segs - fast
        if slow > 0:
            self.ingress.slow_done(skb.flow.tuple(), slow)

    def delivered(self, skb: Skb) -> None:
        """Successful socket delivery: a slow traversal (re)populates."""
        if skb.fastpath is not None and skb.fastpath < skb.segs:
            self.ingress.insert(skb.flow.tuple())

    def defrag_expired(self, head: Skb, npackets: int) -> None:
        """A reassembly entry timed out holding ``npackets`` fragments."""
        if head.fastpath is None:
            return
        slow = npackets - head.fastpath
        if slow > 0:
            self.ingress.slow_done(head.flow.tuple(), slow)

    # ------------------------------------------------------------------
    # Invalidation (container stop / migration, FDB aging)
    # ------------------------------------------------------------------
    def invalidate_flow(self, flow: FlowKey) -> int:
        key = flow.tuple()
        return int(self.ingress.invalidate(key)) + int(self.egress.invalidate(key))

    def invalidate_ip(self, ip: int) -> int:
        return self.ingress.invalidate_ip(ip) + self.egress.invalidate_ip(ip)

    def invalidate_all(self) -> int:
        return self.ingress.invalidate_all() + self.egress.invalidate_all()

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for label, table in (("ingress", self.ingress), ("egress", self.egress)):
            out[f"{label}_hits"] = table.hits
            out[f"{label}_misses"] = table.misses
            out[f"{label}_evictions"] = table.evictions
            out[f"{label}_invalidations"] = table.invalidations
            out[f"{label}_inserts"] = table.inserts
        return out

    def hit_rate(self) -> float:
        """Ingress hit fraction over the whole run."""
        total = self.ingress.hits + self.ingress.misses
        return self.ingress.hits / total if total else 0.0


def fastpath_step(costs: CostModel) -> Step:
    """The single step a cache hit executes in place of the device chain:
    flow-table lookup plus the cached header rewrite (incl. decap)."""

    def effect(skb: Skb, _cpu_index: int) -> Optional[Skb]:
        if skb.encapsulated:
            skb.decapsulate(VXLAN_OVERHEAD)
        return skb

    return Step.simple("flowcache_fastpath", costs.flowcache_fastpath, effect)
