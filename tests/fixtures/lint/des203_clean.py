"""Clean twin of des203_bad: every delay references a named cost."""


def deliver_later(sim, costs, deliver, skb):
    sim.schedule(costs.ipi_delay_us, deliver, skb)
