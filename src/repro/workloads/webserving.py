"""CloudSuite Web Serving (Elgg) workload model — Figure 17.

The benchmark's four tiers are mapped onto the simulation as follows
(matching the paper's deployment: all tiers in containers connected by
the Docker overlay on the 100G NIC):

* **clients** — 200 closed-loop users. An Elgg operation is a full page
  load: one dynamic request followed by a burst of static-asset requests
  (CSS/JS/avatars), all carried over the user's connections and all
  riding the simulated overlay receive pipeline — page loads are what
  make web serving packet-hungry;
* **web server (nginx+PHP)** — a :class:`WorkerPool` with
  ``pm.max_children = 100`` workers; dynamic requests pay PHP service
  time plus memcached/mysql tier calls, static assets are served by
  nginx cheaply;
* **memcached / mysql tiers** — fixed service cost on a dedicated core
  each, reached with an RPC overhead (the paper pins the cache and
  database to two separate cores);
* the client's TCP ACKs for every response segment return through the
  server's receive pipeline (see
  :class:`~repro.workloads.apps.ResponseChannel`), so the overlay's
  serialized softirqs — not the application — are what saturates first,
  reproducing the conditions under which the paper reports up to 300%
  higher operation rates with Falcon.

Per operation the benchmark reports (Figure 17): successful operations
per minute, average response time, and average *delay time* — the excess
of the actual response time over the operation's target time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import FalconConfig
from repro.kernel.skb import PROTO_TCP, Skb
from repro.sim.clock import MS
from repro.sim.stats import LatencyRecorder
from repro.workloads.apps import ResponseChannel, WorkerPool
from repro.workloads.sockperf import Testbed


@dataclass(frozen=True)
class Operation:
    """One Elgg operation profile."""

    name: str
    #: Selection weight in the client mix.
    weight: float
    #: Dynamic-request payload bytes (POST bodies are larger).
    request_bytes: int
    #: Dynamic-response payload bytes (the rendered page).
    response_bytes: int
    #: PHP service time on a web worker, µs.
    service_us: float
    #: Number of memcached lookups the page performs.
    cache_calls: int
    #: Number of mysql queries the page performs.
    db_calls: int
    #: Static assets fetched to finish rendering the page.
    asset_count: int
    #: Mean asset size, bytes.
    asset_bytes: int
    #: CloudSuite-style response-time target, µs.
    target_us: float


#: The Elgg operation mix (weights approximate the CloudSuite driver).
OPERATIONS: List[Operation] = [
    Operation("BrowsetoElgg", 0.24, 400, 24_000, 90.0, 3, 1, 20, 6_000, 2_500.0),
    Operation("Login", 0.08, 600, 16_000, 140.0, 2, 3, 8, 5_000, 2_000.0),
    Operation("CheckActivity", 0.22, 400, 20_000, 110.0, 4, 2, 14, 5_000, 2_200.0),
    Operation("ReceiveChatMessage", 0.16, 400, 4_000, 60.0, 2, 1, 2, 2_000, 1_000.0),
    Operation("SendChatMessage", 0.12, 900, 4_000, 80.0, 2, 2, 2, 2_000, 1_200.0),
    Operation("UpdateActivity", 0.08, 700, 12_000, 120.0, 3, 2, 10, 4_000, 1_800.0),
    Operation("PostSelfWall", 0.06, 1_200, 10_000, 150.0, 2, 3, 8, 4_000, 1_800.0),
    Operation("AddFriend", 0.04, 500, 8_000, 100.0, 2, 2, 5, 3_000, 1_500.0),
]

class _Backend:
    """A single-core backend tier (memcached or mysql) as a FIFO server."""

    def __init__(self, machine, cpu: int, service_us: float, label: str) -> None:
        self.pool = WorkerPool(machine, [cpu], max_workers=1, label=label)
        self.service_us = service_us
        #: Round-trip overhead of reaching the tier over the local overlay.
        self.rpc_overhead_us = 25.0
        self.machine = machine

    def call(self, count: int, done) -> None:
        """Perform ``count`` sequential calls, then invoke ``done``."""
        if count <= 0:
            self.machine.sim.schedule(0.0, done)
            return

        def one(remaining: int) -> None:
            if remaining == 0:
                done()
                return
            self.pool.submit(
                self.service_us,
                lambda: self.machine.sim.schedule(
                    self.rpc_overhead_us, one, remaining - 1
                ),
            )

        one(count)


class _PageLoad:
    """Tracks one in-flight operation (dynamic response + its assets)."""

    __slots__ = ("op", "t_start", "pending", "session", "failed")

    def __init__(self, op: Operation, t_start: float, session) -> None:
        self.op = op
        self.t_start = t_start
        self.pending = 1 + op.asset_count
        self.session = session
        self.failed = False


class _AssetFetch:
    """One asset request with RTO-based retransmission state."""

    __slots__ = ("page", "done", "attempts")

    def __init__(self, page: _PageLoad) -> None:
        self.page = page
        self.done = False
        self.attempts = 0


@dataclass
class OpStats:
    completed: int = 0
    #: Operations abandoned after exhausting asset retransmissions.
    failed: int = 0
    response: LatencyRecorder = field(default_factory=LatencyRecorder)
    delay: LatencyRecorder = field(default_factory=LatencyRecorder)


@dataclass
class WebServingResult:
    users: int
    mode: str
    duration_ms: float
    per_op: Dict[str, OpStats]
    total_ops: int
    cpu_util: List[float]

    def ops_per_minute(self, op_name: str) -> float:
        stats = self.per_op[op_name]
        return stats.completed / (self.duration_ms / 60_000.0)

    def avg_response_ms(self, op_name: str) -> float:
        return self.per_op[op_name].response.mean / 1000.0

    def avg_delay_ms(self, op_name: str) -> float:
        return self.per_op[op_name].delay.mean / 1000.0

    def op_names(self) -> List[str]:
        return [op.name for op in OPERATIONS]


class WebServingScenario:
    """One Figure-17 run."""

    def __init__(
        self,
        users: int = 200,
        mode: str = "overlay",
        falcon: Optional[FalconConfig] = None,
        web_cpus: Optional[List[int]] = None,
        cache_cpu: int = 18,
        db_cpu: int = 19,
        max_children: int = 100,
        think_time_us: float = 1_500.0,
        rto_us: float = 30_000.0,
        max_attempts: int = 4,
        seed: int = 0,
    ) -> None:
        self.users = users
        self.think_time_us = think_time_us
        self.rto_us = rto_us
        self.max_attempts = max_attempts
        web_cpus = web_cpus or [8, 9, 10, 11, 12, 13, 14, 15, 16, 17]
        self.bed = Testbed(
            mode=mode,
            falcon=falcon,
            rps_cpus=[1, 2],
            app_cpus=web_cpus,
            seed=seed,
        )
        machine = self.bed.host.machine
        self.web_pool = WorkerPool(
            machine, web_cpus, max_workers=max_children, label="php_worker"
        )
        self.cache = _Backend(machine, cache_cpu, 2.0, "memcached_tier")
        self.db = _Backend(machine, db_cpu, 8.0, "mysql_tier")
        self.channel = ResponseChannel(
            machine,
            self.bed.egress_link,
            self.bed.stack.costs,
            overlay=self.bed.stack.is_overlay,
            ack_stack=self.bed.stack,
            ack_link=self.bed.link,
        )
        self._rng = machine.rng.stream("webserving")
        self._measuring = False
        self.stats: Dict[str, OpStats] = {op.name: OpStats() for op in OPERATIONS}
        self._ops_by_cumweight = self._build_cdf()
        self._sessions: Dict[int, dict] = {}
        self._build_users()

    def _build_cdf(self):
        total = sum(op.weight for op in OPERATIONS)
        cdf = []
        running = 0.0
        for op in OPERATIONS:
            running += op.weight / total
            cdf.append((running, op))
        return cdf

    def _pick_op(self) -> Operation:
        roll = self._rng.random()
        for bound, op in self._ops_by_cumweight:
            if roll <= bound:
                return op
        return self._ops_by_cumweight[-1][1]

    def _build_users(self) -> None:
        for index in range(self.users):
            # The dynamic request rides the user's main connection (a
            # closed-loop TcpSender); browsers fetch static assets over a
            # second connection, modelled as direct small-request
            # injections on a sibling flow bound to the same socket.
            flow = self.bed.add_tcp_flow(
                600,
                window_msgs=1,
                on_message=self._on_server_packet,
                retransmit_timeout_us=2 * self.rto_us,
                auto_credit=False,
            )
            socket = self.bed.stack.sockets.lookup(flow)
            asset_flow = self.bed._make_flow(PROTO_TCP, 8000 + index)
            self.bed.stack.bind_flow(asset_flow, socket)
            self._sessions[flow.flow_id] = {
                "asset_flow": asset_flow,
                "asset_msg": 0,
                "main_flow": flow,
            }
            self._sessions[asset_flow.flow_id] = self._sessions[flow.flow_id]

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _on_server_packet(self, socket, skb, latency_us: float) -> None:
        if isinstance(skb.meta, _AssetFetch):
            self._serve_asset(socket, skb)
        else:
            self._serve_dynamic(socket, skb)

    def _serve_dynamic(self, socket, skb) -> None:
        op = self._pick_op()
        page = _PageLoad(op, skb.t_send, self._sessions[skb.flow.flow_id])
        worker_cpu = socket.app_cpu_index

        def after_db() -> None:
            self.channel.respond(
                worker_cpu,
                op.response_bytes,
                lambda: self._main_response_at_client(page),
                flow=skb.flow,
            )

        def after_cache() -> None:
            self.db.call(op.db_calls, after_db)

        self.web_pool.submit(
            op.service_us, lambda: self.cache.call(op.cache_calls, after_cache)
        )

    def _serve_asset(self, socket, skb) -> None:
        fetch: _AssetFetch = skb.meta
        worker_cpu = socket.app_cpu_index
        self.web_pool.submit(
            self.bed.stack.costs.asset_service_us,
            lambda: self.channel.respond(
                worker_cpu,
                fetch.page.op.asset_bytes,
                lambda: self._asset_at_client(fetch),
                flow=skb.flow,
            ),
        )

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------
    def _main_response_at_client(self, page: _PageLoad) -> None:
        """The page HTML arrived — the browser fires the asset burst."""
        session = page.session
        asset_flow = session["asset_flow"]
        sim = self.bed.sim
        costs = self.bed.stack.costs
        for index in range(page.op.asset_count):
            fetch = _AssetFetch(page)
            # Browsers pipeline asset fetches; stagger them slightly.
            sim.schedule(
                costs.asset_fetch_first_us + index * costs.asset_fetch_stagger_us,
                self._attempt_asset,
                fetch,
            )
        self._part_done(page)

    def _attempt_asset(self, fetch: _AssetFetch) -> None:
        """(Re)send one asset request; arm the retransmission timer."""
        if fetch.done or fetch.page.failed:
            return
        if fetch.attempts >= self.max_attempts:
            if not fetch.page.failed:
                fetch.page.failed = True
                if self._measuring:
                    self.stats[fetch.page.op.name].failed += 1
                self._release_user(fetch.page)
            return
        fetch.attempts += 1
        session = fetch.page.session
        session["asset_msg"] += 1
        asset_flow = session["asset_flow"]
        encap = 50 if self.bed.stack.is_overlay else 0
        request = Skb(
            asset_flow,
            size=260 + encap,
            wire_size=260 + encap + 38,
            msg_id=session["asset_msg"],
            msg_size=260,
            t_send=self.bed.sim.now,
            encapsulated=self.bed.stack.is_overlay,
            meta=fetch,
        )
        self.bed.link.send(request.wire_size, lambda: self.bed.stack.inject(request))
        self.bed.sim.schedule(self.rto_us, self._attempt_asset, fetch)

    def _asset_at_client(self, fetch: _AssetFetch) -> None:
        if fetch.done:
            return  # duplicate response to a retransmitted request
        fetch.done = True
        self._part_done(fetch.page)

    def _part_done(self, page: _PageLoad) -> None:
        page.pending -= 1
        if page.pending == 0:
            self._complete(page)

    def _release_user(self, page: _PageLoad) -> None:
        """Page over (rendered or abandoned): think, then the next op."""
        sender = self.bed.sender_for(page.session["main_flow"])
        if sender is not None:
            sender.credit()

    def _complete(self, page: _PageLoad) -> None:
        self._release_user(page)
        if not self._measuring or page.failed:
            return
        response_us = self.bed.sim.now - page.t_start
        stats = self.stats[page.op.name]
        stats.completed += 1
        stats.response.record(response_us)
        stats.delay.record(max(response_us - page.op.target_us, 0.0))

    # ------------------------------------------------------------------
    def run(
        self, duration_ms: float = 40.0, warmup_ms: float = 20.0
    ) -> WebServingResult:
        end_us = (warmup_ms + duration_ms) * MS
        for sender in self.bed.senders:
            sender.ack_delay_us = self.think_time_us
            sender.start(until_us=end_us)
        self.bed.sim.run(until=warmup_ms * MS)
        self.bed.window.open()
        self._measuring = True
        self.bed.sim.run(until=end_us)
        self.bed.window.close()
        self._measuring = False
        machine = self.bed.host.machine
        return WebServingResult(
            users=self.users,
            mode=(
                f"{self.bed.mode}+falcon"
                if self.bed.stack.falcon and self.bed.stack.falcon.config.enabled
                else self.bed.mode
            ),
            duration_ms=duration_ms,
            per_op=self.stats,
            total_ops=sum(s.completed for s in self.stats.values()),
            cpu_util=[
                self.bed.window.cpu.utilization(i)
                for i in range(machine.num_cpus)
            ],
        )


def run_webserving(
    users: int = 200,
    mode: str = "overlay",
    falcon: Optional[FalconConfig] = None,
    duration_ms: float = 40.0,
    warmup_ms: float = 20.0,
    seed: int = 0,
) -> WebServingResult:
    """Convenience wrapper for the Figure 17 comparison."""
    scenario = WebServingScenario(users=users, mode=mode, falcon=falcon, seed=seed)
    return scenario.run(duration_ms=duration_ms, warmup_ms=warmup_ms)
