"""OWN621-623: flow-cache entry lifecycle violations.

insert -> hit -> invalidate must be total and accounted: an
unaccounted removal blinds the counter-conservation checks, a double
release on one path tears down an entry a re-insert now owns (the
RECORD_INVAL churn hazard), and a table with no removal surface keeps
stale fast-path mappings forever.
"""


class SilentDropTable:
    def __init__(self):
        self._entries = {}
        self.evictions = 0

    def drop_flow(self, key):
        self._entries.pop(key, None)  # expect: OWN621

    def flush_host(self):
        self._entries.clear()  # expect: OWN621


class DoubleTeardown:
    def churn_teardown(self, table, key):
        table.invalidate(key)
        self.notify_remote(key)
        table.invalidate(key)  # expect: OWN622

    def scrub(self, key):
        self.invalidations += 1
        self._entries.pop(key, None)
        self._entries.pop(key, None)  # expect: OWN622


class ImmortalMapTable:
    def __init__(self):
        self._entries = {}

    def insert(self, key, route):
        self._entries[key] = route  # expect: OWN623
