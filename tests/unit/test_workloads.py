"""Unit tests for traffic processes and flow senders."""

import random

import pytest

from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey
from repro.kernel.stack import StackConfig
from repro.overlay.host import Host
from repro.sim.engine import Simulator
from repro.workloads.flows import TcpSender, UdpSender
from repro.workloads.traffic import (
    ConstantRate,
    HotspotSchedule,
    PoissonRate,
    Saturating,
)


class TestTraffic:
    def test_constant_rate_gap(self):
        rng = random.Random(0)
        assert ConstantRate(1e6).next_gap_us(rng) == pytest.approx(1.0)

    def test_poisson_mean(self):
        rng = random.Random(0)
        process = PoissonRate(100000.0)  # mean gap 10us
        gaps = [process.next_gap_us(rng) for _ in range(20000)]
        assert sum(gaps) / len(gaps) == pytest.approx(10.0, rel=0.05)

    def test_saturating_zero_gap(self):
        assert Saturating().next_gap_us(random.Random(0)) == 0.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            PoissonRate(-1.0)

    def test_hotspot_schedule_steps(self):
        schedule = HotspotSchedule([(0.0, 1000.0), (500.0, 4000.0)])
        assert schedule.rate_at(0.0) == 1000.0
        assert schedule.rate_at(499.0) == 1000.0
        assert schedule.rate_at(500.0) == 4000.0
        rng = random.Random(0)
        assert schedule.next_gap_us(rng, 600.0) == pytest.approx(250.0)

    def test_hotspot_validation(self):
        with pytest.raises(ValueError):
            HotspotSchedule([])
        with pytest.raises(ValueError):
            HotspotSchedule([(10.0, 1.0), (0.0, 2.0)])


def make_rig(mode="host"):
    sim = Simulator()
    host = Host(sim, StackConfig(mode=mode), num_cpus=8)
    link = host.attach_ingress(100.0)
    return sim, host, link


class TestUdpSender:
    def test_messages_reach_nic(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = UdpSender(
            sim, link, host.stack, flow, 64, CostModel(),
            random.Random(0), ConstantRate(100000.0),
        )
        sender.start(until_us=100.0)
        sim.run(until=200.0)
        assert sender.messages_sent >= 9
        assert host.stack.nic.rx_packets == sender.frames_sent

    def test_fragmented_message_produces_frames(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = UdpSender(
            sim, link, host.stack, flow, 65507, CostModel(),
            random.Random(0), ConstantRate(1000.0),
        )
        sender.start(until_us=100.0)
        sim.run(until=2000.0)
        assert sender.frames_sent == sender.messages_sent * 45

    def test_stop_halts_sending(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = UdpSender(
            sim, link, host.stack, flow, 64, CostModel(),
            random.Random(0), ConstantRate(100000.0),
        )
        sender.start()
        sim.run(until=50.0)
        sender.stop()
        count = sender.messages_sent
        sim.run(until=500.0)
        assert sender.messages_sent <= count + 1

    def test_until_bound_respected(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = UdpSender(
            sim, link, host.stack, flow, 64, CostModel(),
            random.Random(0), ConstantRate(100000.0),
        )
        sender.start(until_us=100.0)
        sim.run(until=1000.0)
        assert sender.messages_sent <= 12

    def test_shared_state_keeps_msg_ids_unique(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        from repro.workloads.flows import FlowState

        shared = FlowState()
        senders = [
            UdpSender(
                sim, link, host.stack, flow, 64, CostModel(),
                random.Random(i), ConstantRate(50000.0), shared_state=shared,
            )
            for i in range(3)
        ]
        for sender in senders:
            sender.start(until_us=200.0)
        sim.run(until=500.0)
        total = sum(s.messages_sent for s in senders)
        assert shared.msg_counter == total

    def test_saturating_paced_by_tx_cost(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_UDP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = UdpSender(
            sim, link, host.stack, flow, 16, CostModel(),
            random.Random(0), Saturating(),
        )
        sender.start(until_us=1000.0)
        sim.run(until=1000.0)
        expected = 1000.0 / CostModel().tx_cost_us(16, overlay=False)
        assert sender.messages_sent == pytest.approx(expected, rel=0.05)


class TestTcpSender:
    def test_window_limits_inflight(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = TcpSender(
            sim, link, host.stack, flow, 4096, CostModel(),
            random.Random(0), window_msgs=4,
        )
        sender.start()
        sim.run(until=50.0)
        # Without credits, exactly the window is in flight.
        assert sender.messages_sent == 4
        assert sender.outstanding == 4

    def test_credit_releases_window(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = TcpSender(
            sim, link, host.stack, flow, 4096, CostModel(),
            random.Random(0), window_msgs=2,
        )
        sender.start()
        sim.run(until=50.0)
        sender.credit()
        sim.run(until=100.0)
        assert sender.messages_sent == 3
        assert sender.completed_messages == 1

    def test_invalid_window(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        with pytest.raises(ValueError):
            TcpSender(
                sim, link, host.stack, flow, 64, CostModel(),
                random.Random(0), window_msgs=0,
            )

    def test_segments_sized_by_mss(self):
        sim, host, link = make_rig()
        flow = FlowKey.make(1, host.host_ip, PROTO_TCP)
        host.stack.open_socket(flow, app_cpu=2)
        sender = TcpSender(
            sim, link, host.stack, flow, 4096, CostModel(),
            random.Random(0), window_msgs=1,
        )
        sender.start()
        sim.run(until=50.0)
        assert sender.frames_sent == 3  # 4096 bytes at 1460 MSS
