"""CloudSuite Data Caching (memcached) workload model — Figure 18.

The paper's configuration: a memcached server container (4 GB, 4 worker
threads, 550-byte objects) and a client with up to 10 threads driving 100
connections with the Twitter dataset. We model:

* each connection as a TCP flow carrying small GET requests (~76 B) and
  550-byte responses (GETs dominate the Twitter profile; a small SET
  fraction writes larger requests with tiny replies);
* 4 memcached worker threads as a :class:`WorkerPool` over 4 cores, with
  a ~2 µs in-memory hash lookup per request;
* closed-loop clients with exponential think time, so client count
  scales offered load the way adding client threads does in CloudSuite.

Latency is measured at the client: request initiation → response
received, i.e. it includes the server's full receive pipeline (where
Falcon acts), service time, and the response path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import FalconConfig
from repro.sim.clock import MS
from repro.sim.stats import LatencyRecorder
from repro.workloads.apps import ResponseChannel, WorkerPool
from repro.workloads.sockperf import Testbed

#: Twitter-dataset object size the paper configures.
OBJECT_SIZE = 550
#: GET request wire payload (key + protocol overhead).
GET_REQUEST_SIZE = 76
#: Fraction of SETs in the Twitter profile.
SET_FRACTION = 0.1


@dataclass
class MemcachedResult:
    clients: int
    mode: str
    requests_completed: int
    throughput_rps: float
    latency: Dict[str, float]
    cpu_util: List[float] = field(default_factory=list)
    server_pool_peak_queue: int = 0


class MemcachedScenario:
    """One data-caching run."""

    def __init__(
        self,
        clients: int = 10,
        connections_per_client: int = 10,
        mode: str = "overlay",
        falcon: Optional[FalconConfig] = None,
        worker_cpus: Optional[List[int]] = None,
        think_time_us: float = 120.0,
        service_us: float = 2.0,
        seed: int = 0,
    ) -> None:
        self.clients = clients
        self.connections = clients * connections_per_client
        self.think_time_us = think_time_us
        self.service_us = service_us
        worker_cpus = worker_cpus or [10, 11, 12, 13]
        self.bed = Testbed(
            mode=mode,
            falcon=falcon,
            rps_cpus=[1, 2],
            app_cpus=worker_cpus,
            seed=seed,
        )
        machine = self.bed.host.machine
        self.pool = WorkerPool(
            machine, worker_cpus, max_workers=4, label="memcached_worker"
        )
        self.channel = ResponseChannel(
            machine,
            self.bed.egress_link,
            self.bed.stack.costs,
            overlay=self.bed.stack.is_overlay,
            ack_stack=self.bed.stack,
            ack_link=self.bed.link,
        )
        self.latency = LatencyRecorder()
        self.completed = 0
        self._measuring = False
        self._rng = machine.rng.stream("memcached")
        self._flows = []
        self._worker_cpus = worker_cpus
        self._build_connections()

    def _build_connections(self) -> None:
        for index in range(self.connections):
            worker_cpu = self._worker_cpus[index % len(self._worker_cpus)]
            flow = self.bed.add_tcp_flow(
                GET_REQUEST_SIZE,
                window_msgs=1,
                app_cpu=worker_cpu,
                on_message=self._on_request,
            )
            self._flows.append(flow)

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------
    def _on_request(self, socket, skb, latency_us: float) -> None:
        """A request finished its receive pipeline — serve it."""
        t_request = skb.t_send
        worker_cpu = socket.app_cpu_index
        is_set = self._rng.random() < SET_FRACTION
        response_bytes = 40 if is_set else OBJECT_SIZE

        def respond() -> None:
            self.channel.respond(
                worker_cpu,
                response_bytes,
                lambda: self._at_client(t_request),
                flow=skb.flow,
            )

        self.pool.submit(self.service_us, respond)

    def _at_client(self, t_request: float) -> None:
        now = self.bed.sim.now
        if self._measuring:
            self.latency.record(now - t_request)
            self.completed += 1
        # Closed loop: think, then the TcpSender window credit (already
        # granted at socket delivery) lets the next request flow.

    # ------------------------------------------------------------------
    def run(
        self, duration_ms: float = 30.0, warmup_ms: float = 15.0
    ) -> MemcachedResult:
        end_us = (warmup_ms + duration_ms) * MS
        for sender in self.bed.senders:
            sender.ack_delay_us = self.think_time_us
            sender.start(until_us=end_us)
        self.bed.sim.run(until=warmup_ms * MS)
        self.bed.window.open()
        self._measuring = True
        self.bed.sim.run(until=end_us)
        self.bed.window.close()
        self._measuring = False
        machine = self.bed.host.machine
        window = self.bed.window
        return MemcachedResult(
            clients=self.clients,
            mode=(
                f"{self.bed.mode}+falcon"
                if self.bed.stack.falcon and self.bed.stack.falcon.config.enabled
                else self.bed.mode
            ),
            requests_completed=self.completed,
            throughput_rps=self.completed / (duration_ms * 1e-3),
            latency=self.latency.summary(),
            cpu_util=[
                window.cpu.utilization(i) for i in range(machine.num_cpus)
            ],
            server_pool_peak_queue=self.pool.peak_queue,
        )


def run_memcached(
    clients: int,
    mode: str = "overlay",
    falcon: Optional[FalconConfig] = None,
    duration_ms: float = 30.0,
    warmup_ms: float = 15.0,
    seed: int = 0,
) -> MemcachedResult:
    """Convenience wrapper for the Figure 18 sweep."""
    scenario = MemcachedScenario(clients=clients, mode=mode, falcon=falcon, seed=seed)
    return scenario.run(duration_ms=duration_ms, warmup_ms=warmup_ms)
