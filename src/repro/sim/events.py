"""The scheduled-callback record shared by the engine and its schedulers.

Split out of :mod:`repro.sim.engine` so scheduler implementations
(:mod:`repro.sim.scheduler`) can type against :class:`Event` without a
circular import.
"""

from __future__ import annotations

from typing import Any, Callable, Tuple


class Event:
    """A scheduled callback.

    Instances are returned by :meth:`~repro.sim.engine.Simulator.schedule`
    and can be passed to :meth:`~repro.sim.engine.Simulator.cancel`. They
    order by ``(time, seq)`` which is what the scheduler requires.

    Two bookkeeping flags support the engine's hot path and are not part
    of the public surface: ``queued`` tracks whether the event currently
    sits in a scheduler (so cancel-after-fire cannot corrupt compaction
    accounting), and ``reusable`` marks events created through the
    no-handle ``post*`` APIs, which the engine may recycle through its
    freelist once they have run.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "queued", "reusable")

    def __init__(
        self, time: float, seq: int, fn: Callable[..., Any], args: Tuple[Any, ...]
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.queued = False
        self.reusable = False

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.3f}us #{self.seq} {name}{state}>"
