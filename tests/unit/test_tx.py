"""Unit tests for the transmit path (qdisc + TxStack)."""

import pytest

from repro.hw.link import Link
from repro.hw.topology import Machine
from repro.kernel.costs import CostModel
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb
from repro.kernel.tx import Qdisc, TxStack
from repro.sim.engine import Simulator


def make_env(bandwidth=100.0, overlay=True, qdisc_capacity=1000):
    sim = Simulator()
    machine = Machine(sim, num_cpus=4)
    link = Link(sim, bandwidth, propagation_us=1.0)
    tx = TxStack(
        machine, link, CostModel(), overlay=overlay, qdisc_capacity=qdisc_capacity
    )
    return sim, machine, link, tx


class TestQdisc:
    def test_frames_drain_in_order(self):
        sim = Simulator()
        link = Link(sim, 10.0, propagation_us=0.0)
        qdisc = Qdisc(sim, link)
        out = []
        for index in range(5):
            skb = Skb(FlowKey.make(1, 2), size=1250, wire_size=1250, seq=index)
            qdisc.enqueue(skb, lambda s: out.append(s.seq))
        sim.run()
        assert out == [0, 1, 2, 3, 4]
        assert sim.now == pytest.approx(5.0)  # 5 x 1 us serialization

    def test_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, 0.001, propagation_us=0.0)  # ~glacial link
        qdisc = Qdisc(sim, link, capacity_packets=3)
        accepted = [
            qdisc.enqueue(Skb(FlowKey.make(1, 2), size=100), lambda s: None)
            for _ in range(6)
        ]
        # One frame is in flight immediately; three queue; the rest drop.
        assert accepted.count(True) == 4
        assert qdisc.drops == 2


class TestTxStack:
    def test_sendmsg_charges_app_core(self):
        sim, machine, link, tx = make_env()
        flow = FlowKey.make(1, 2, PROTO_UDP)
        got = []
        tx.send_message(flow, 512, app_cpu=2, deliver=got.append)
        sim.run()
        assert len(got) == 1
        assert machine.acct.busy_us_label(2, "sendmsg") > 0
        assert tx.messages_sent == 1

    def test_overlay_tx_costs_more_than_host(self):
        costs = {}
        for overlay in (False, True):
            sim, machine, link, tx = make_env(overlay=overlay)
            flow = FlowKey.make(1, 2, PROTO_UDP)
            tx.send_message(flow, 512, app_cpu=2, deliver=lambda s: None)
            sim.run()
            costs[overlay] = machine.acct.busy_us_label(2, "sendmsg")
        assert costs[True] > costs[False]

    def test_fragmentation_and_encap_on_wire(self):
        sim, machine, link, tx = make_env(overlay=True)
        flow = FlowKey.make(1, 2, PROTO_UDP)
        frames = []
        tx.send_message(flow, 4096, app_cpu=0, deliver=frames.append)
        sim.run()
        assert len(frames) == 3  # 4 KB over the 1450-byte overlay MTU
        assert all(f.encapsulated for f in frames)
        assert sum(f.msg_size for f in frames) == 3 * 4096
        assert [f.frag_index for f in frames] == [0, 1, 2]

    def test_wire_seq_monotonic_across_messages(self):
        sim, machine, link, tx = make_env()
        flow = FlowKey.make(1, 2, PROTO_TCP)
        frames = []
        for msg_id in range(3):
            tx.send_message(
                flow, 4096, app_cpu=1, deliver=frames.append, msg_id=msg_id
            )
        sim.run()
        seqs = [f.seq for f in frames]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_tx_into_rx_stack_end_to_end(self):
        """Full duplex: a simulated sender feeding the simulated receiver."""
        from repro.kernel.stack import StackConfig
        from repro.overlay.host import Host

        sim = Simulator()
        receiver = Host(sim, StackConfig(mode="overlay"), num_cpus=8, name="rx")
        link = receiver.attach_ingress(100.0)
        sender_machine = Machine(sim, num_cpus=4)
        tx = TxStack(sender_machine, link, CostModel(), overlay=True)

        container = receiver.launch_container("c")
        flow = FlowKey.make(1, container.private_ip, PROTO_UDP)
        got = []
        receiver.stack.open_socket(
            flow, app_cpu=2, on_message=lambda s, skb, lat: got.append(skb)
        )
        for msg_id in range(20):
            sim.schedule(
                msg_id * 5.0,
                tx.send_message,
                flow,
                256,
                1,
                lambda skb: receiver.stack.inject(skb),
                msg_id,
            )
        sim.run(until=100_000.0)
        assert len(got) == 20
        assert [skb.msg_id for skb in got] == sorted(s.msg_id for s in got)
        # Sender-side CPU was charged on the sender's machine, not the
        # receiver's.
        assert sender_machine.acct.busy_us_label(1, "sendmsg") > 0
        assert receiver.machine.acct.busy_us_label(1, "sendmsg") == 0
