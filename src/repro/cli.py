"""Command-line interface for exploratory runs.

Examples::

    python -m repro.cli stress   --mode overlay --size 16 --falcon
    python -m repro.cli fixed    --mode host --size 1024 --rate 300000
    python -m repro.cli tcp      --mode overlay --size 4096 --falcon --split-gro
    python -m repro.cli latency  --size 16 --rate 300000
    python -m repro.cli figures  --quick --only fig10_udp_stress
    python -m repro.cli bench    --quick --out results

`figures` delegates to :mod:`repro.experiments.run_all`; the other
subcommands build a single scenario and print one result row plus the
per-core utilization — the fastest way to poke at a configuration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import FalconConfig
from repro.metrics.report import Table
from repro.workloads.sockperf import Experiment, RunResult


def _falcon_from_args(args) -> Optional[FalconConfig]:
    if not args.falcon:
        return None
    return FalconConfig(
        cpus=[int(cpu) for cpu in args.falcon_cpus.split(",")],
        load_threshold=args.load_threshold,
        policy=args.policy,
        split_gro=args.split_gro,
    )


def _experiment(args) -> Experiment:
    return Experiment(
        mode=args.mode,
        falcon=_falcon_from_args(args),
        kernel=args.kernel,
        bandwidth_gbps=args.bandwidth,
        steering=args.steering,
        seed=args.seed,
    )


def _print_result(result: RunResult) -> None:
    table = Table(["metric", "value"], title=f"{result.mode} / {result.proto}")
    table.add_row("message rate", f"{result.message_rate_pps/1e3:,.1f} kmsg/s")
    table.add_row("goodput", f"{result.goodput_gbps:.2f} Gbps")
    table.add_row("offered", f"{result.offered_pps/1e3:,.1f} kmsg/s")
    for pct in ("avg", "p50", "p90", "p99", "p99.9"):
        table.add_row(f"latency {pct}", f"{result.latency[pct]:.1f} us")
    table.add_row("reordered", result.reordered_messages)
    table.add_row(
        "drops",
        " ".join(f"{k}={v}" for k, v in result.drops.items() if v) or "none",
    )
    print(table.render())
    busy = [
        f"cpu{index}:{util:.0%}"
        for index, util in enumerate(result.cpu_util)
        if util > 0.03
    ]
    print("busy cores:", " ".join(busy) or "(idle)")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--mode", choices=["host", "overlay"], default="overlay")
    parser.add_argument("--size", type=int, default=16, help="message bytes")
    parser.add_argument("--kernel", choices=["4.19", "5.4"], default="4.19")
    parser.add_argument("--bandwidth", type=float, default=100.0, help="link Gbps")
    parser.add_argument("--steering", choices=["rps", "rfs"], default="rps")
    parser.add_argument("--duration-ms", type=float, default=20.0)
    parser.add_argument("--warmup-ms", type=float, default=10.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--falcon", action="store_true", help="enable Falcon")
    parser.add_argument("--falcon-cpus", default="3,4,5,6")
    parser.add_argument("--load-threshold", type=float, default=0.85)
    parser.add_argument(
        "--policy", choices=["two_choice", "static", "least_loaded"],
        default="two_choice",
    )
    parser.add_argument("--split-gro", action="store_true")


def _add_baseline_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="enforce the suppressed-findings ratchet against FILE "
        "(new or stale suppressions fail)",
    )
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="regenerate the suppressed-findings baseline into FILE",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    stress = sub.add_parser("stress", help="UDP single-flow saturating stress")
    _add_common(stress)
    stress.add_argument("--clients", type=int, default=3)

    fixed = sub.add_parser("fixed", help="UDP single flow at a fixed rate")
    _add_common(fixed)
    fixed.add_argument("--rate", type=float, required=True, help="messages/s")
    fixed.add_argument("--poisson", action="store_true")

    tcp = sub.add_parser("tcp", help="closed-loop TCP stream")
    _add_common(tcp)
    tcp.add_argument("--window", type=int, default=64, help="messages in flight")

    latency = sub.add_parser(
        "latency", help="Poisson fixed-rate latency comparison across modes"
    )
    _add_common(latency)
    latency.add_argument("--rate", type=float, default=300_000.0)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("--quick", action="store_true")
    figures.add_argument("--out", default="results")
    figures.add_argument("--only", default=None, help="comma-separated list")

    lint = sub.add_parser(
        "lint",
        help="run the simlint static-analysis pass (determinism, "
        "DES-discipline, simulated-concurrency contracts)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    lint.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule SIM101)",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    _add_baseline_args(lint)

    flow = sub.add_parser(
        "flow",
        help="run the simflow dataflow pass (skb typestate, time-unit "
        "taint, static/dynamic stage-graph cross-check)",
    )
    flow.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    flow.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    flow.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule FLOW402)",
    )
    flow.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    flow.add_argument(
        "--trace",
        nargs="*",
        default=None,
        metavar="GOLDEN_JSON",
        help="cross-check the static stage graph against golden traces "
        "(default: every trace in tests/goldens); skips the dataflow rules",
    )
    flow.add_argument(
        "--dump-spec",
        action="store_true",
        help="print the derived stage-order spec as JSON and exit",
    )
    _add_baseline_args(flow)

    order = sub.add_parser(
        "order",
        help="run the simorder pass (partition-invariance taint, "
        "cross-shard causality, flowcache ordering typestate)",
    )
    order.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    order.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    order.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule ORD511)",
    )
    order.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    order.add_argument(
        "--trace",
        nargs="*",
        default=None,
        metavar="GOLDEN_JSON",
        help="cross-check per-flow delivery order and fastpath edges "
        "against golden traces (default: every trace in tests/goldens); "
        "skips the static rules",
    )
    _add_baseline_args(order)

    san = sub.add_parser(
        "san",
        help="run the simsan ownership pass (event freelist linearity, "
        "skb ownership transfer, flow-cache entry lifecycle)",
    )
    san.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    san.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    san.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="ID",
        help="run only this rule id (repeatable, e.g. --rule OWN601)",
    )
    san.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    san.add_argument(
        "--trace",
        action="store_true",
        help="run a sanitized dynamic probe and cross-check its site tags "
        "against the static instrumentation catalog; skips the static rules",
    )
    _add_baseline_args(san)

    check = sub.add_parser(
        "check",
        help="run every static gate in one pass: lint + flow + order + san "
        "(each against its committed baseline) + the mypy strict gate",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    check.add_argument(
        "--format", choices=["text", "json"], default="text", dest="fmt"
    )
    check.add_argument(
        "--require-mypy",
        action="store_true",
        help="fail (instead of skipping) when mypy is not installed "
        "(CI mode)",
    )

    bench = sub.add_parser(
        "bench",
        help="run the performance benchmark suite and emit BENCH_<ts>.json",
    )
    bench.add_argument(
        "--quick", action="store_true", help="quick subset (CI perf-smoke mode)"
    )
    bench.add_argument("--out", default="results", help="output directory")
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: min(4, cpus))",
    )
    bench.add_argument(
        "--only",
        default=None,
        help="comma-separated benchmark names (see --list)",
    )
    bench.add_argument("--seed", type=int, default=0, help="root seed")
    bench.add_argument(
        "--scheduler",
        choices=["heap", "calendar"],
        default="heap",
        help="event-scheduler implementation benchmarks run under",
    )
    bench.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="validate an existing BENCH_*.json against the schema "
        "(and against --baseline, when given) and exit",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="gate events/sec against a committed BENCH_*.json baseline; "
        "regressions beyond --tolerance fail the run",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional events/sec slowdown vs --baseline "
        "(default: schema DEFAULT_TOLERANCE)",
    )
    bench.add_argument(
        "--list", action="store_true", dest="list_benches",
        help="print the benchmark catalogue and exit",
    )

    cluster = sub.add_parser(
        "cluster",
        help="run a multi-host ring scenario on the sharded engine "
        "(--shards N splits the hosts across worker processes)",
    )
    cluster.add_argument("--proto", choices=["udp", "tcp"], default="udp")
    cluster.add_argument("--hosts", type=int, default=4)
    cluster.add_argument(
        "--shards", type=int, default=1,
        help="shard count (must divide into the host set; default 1)",
    )
    cluster.add_argument(
        "--transport",
        choices=["inline", "process"],
        default=None,
        help="inline = all shards in this process (deterministic "
        "reference); process = one spawn worker per shard "
        "(default: inline for 1 shard, process otherwise)",
    )
    cluster.add_argument("--size", type=int, default=512, help="message bytes")
    cluster.add_argument(
        "--rate", type=float, default=None,
        help="UDP per-flow rate in messages/s (default: saturating)",
    )
    cluster.add_argument(
        "--window", type=int, default=8, help="TCP messages in flight"
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--scheduler", choices=["heap", "calendar"], default="heap"
    )
    cluster.add_argument("--falcon", action="store_true", help="enable Falcon")
    cluster.add_argument("--bandwidth", type=float, default=10.0, help="link Gbps")
    cluster.add_argument(
        "--propagation-us", type=float, default=5.0,
        help="inter-host propagation delay (the sync lookahead)",
    )
    cluster.add_argument("--duration-us", type=float, default=5000.0)
    cluster.add_argument("--warmup-us", type=float, default=2000.0)

    validate = sub.add_parser(
        "validate",
        help="run the simulator validation suites (invariants, differential, golden)",
    )
    validate.add_argument(
        "--suite",
        choices=["all", "invariants", "differential", "golden"],
        default="all",
    )
    validate.add_argument(
        "--quick", action="store_true", help="shorter runs (CI smoke mode)"
    )
    validate.add_argument(
        "--regen-goldens",
        action="store_true",
        help="rewrite the checked-in golden traces from this run",
    )
    validate.add_argument(
        "--golden-dir", default=None, help="override the golden trace directory"
    )
    validate.add_argument(
        "--inject",
        choices=["corrupt-counter", "lost-packet"],
        default=None,
        help="deliberately break an invariant mid-run (monitor self-test; "
        "the command must then fail)",
    )
    return parser


def _apply_baseline(args, result, label: str) -> Optional[int]:
    """Handle --baseline / --write-baseline; None means keep going."""
    from repro.analysis.baseline import (
        check_baseline,
        load_baseline_file,
        render_baseline,
    )

    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            handle.write(render_baseline(result))
        print(f"repro {label}: baseline written to {args.write_baseline}")
        return 0 if result.ok else 1
    if args.baseline:
        try:
            frozen = load_baseline_file(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"repro {label}: {exc}", file=sys.stderr)
            return 2
        errors = check_baseline(result, frozen)
        for error in errors:
            print(f"baseline: {error}", file=sys.stderr)
        if errors or not result.ok:
            return 1
        return 0
    return None


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figures":
        from repro.experiments.run_all import run_all

        only = set(args.only.split(",")) if args.only else None
        run_all(quick=args.quick, out_dir=args.out, only=only)
        return 0

    if args.command == "lint":
        from repro.analysis.lint import (
            ALL_RULES,
            lint_paths,
            render_json,
            render_text,
        )

        if args.list_rules:
            for rule in ALL_RULES:
                scope = (
                    ", ".join(rule.scope) if rule.scope else "all linted files"
                )
                print(f"{rule.id}  {rule.title}")
                print(f"    scope: {scope}")
                print(f"    {rule.rationale}")
            return 0
        try:
            result = lint_paths(args.paths, rule_ids=args.rule)
        except ValueError as exc:
            print(f"repro lint: {exc}", file=sys.stderr)
            return 2
        print(render_json(result) if args.fmt == "json" else render_text(result))
        baseline_rc = _apply_baseline(args, result, "lint")
        if baseline_rc is not None:
            return baseline_rc
        return 0 if result.ok else 1

    if args.command == "flow":
        from repro.analysis.flow import FLOW_RULES, cross_check, flow_paths, stage_order_spec
        from repro.analysis.lint import render_json, render_text

        if args.list_rules:
            for rule in FLOW_RULES:
                scope = (
                    ", ".join(rule.scope) if rule.scope else "all analyzed files"
                )
                print(f"{rule.id}  {rule.title}")
                print(f"    scope: {scope}")
                print(f"    {rule.rationale}")
            return 0
        if args.dump_spec:
            import json as _json

            print(_json.dumps(stage_order_spec().describe(), indent=2, sort_keys=True))
            return 0
        if args.trace is not None:
            check = cross_check(args.trace)
            print(check.to_json() if args.fmt == "json" else check.to_text())
            return 0 if check.ok else 1
        try:
            result = flow_paths(args.paths, rule_ids=args.rule)
        except ValueError as exc:
            print(f"repro flow: {exc}", file=sys.stderr)
            return 2
        print(render_json(result) if args.fmt == "json" else render_text(result))
        baseline_rc = _apply_baseline(args, result, "flow")
        if baseline_rc is not None:
            return baseline_rc
        return 0 if result.ok else 1

    if args.command == "order":
        from repro.analysis.lint import render_json, render_text
        from repro.analysis.order import (
            ORDER_RULES,
            order_cross_check,
            order_paths,
        )

        if args.list_rules:
            for rule in ORDER_RULES:
                scope = (
                    ", ".join(rule.scope) if rule.scope else "all analyzed files"
                )
                print(f"{rule.id}  {rule.title}")
                print(f"    scope: {scope}")
                print(f"    {rule.rationale}")
            return 0
        if args.trace is not None:
            check = order_cross_check(args.trace)
            print(check.to_json() if args.fmt == "json" else check.to_text())
            return 0 if check.ok else 1
        try:
            result = order_paths(args.paths, rule_ids=args.rule)
        except ValueError as exc:
            print(f"repro order: {exc}", file=sys.stderr)
            return 2
        print(render_json(result) if args.fmt == "json" else render_text(result))
        baseline_rc = _apply_baseline(args, result, "order")
        if baseline_rc is not None:
            return baseline_rc
        return 0 if result.ok else 1

    if args.command == "san":
        from repro.analysis.lint import render_json, render_text
        from repro.analysis.san import SAN_RULES, san_cross_check, san_paths

        if args.list_rules:
            for rule in SAN_RULES:
                scope = (
                    ", ".join(rule.scope) if rule.scope else "all analyzed files"
                )
                print(f"{rule.id}  {rule.title}")
                print(f"    scope: {scope}")
                print(f"    {rule.rationale}")
            return 0
        if args.trace:
            check = san_cross_check(paths=args.paths)
            if args.fmt == "json":
                import json as _json

                print(
                    _json.dumps(
                        {
                            "ok": check.ok,
                            "static_sites": check.static_sites,
                            "dynamic_sites": check.dynamic_sites,
                            "unknown": check.unknown,
                            "unexercised": check.unexercised,
                        },
                        indent=2,
                        sort_keys=True,
                    )
                )
            else:
                for line in check.render():
                    print(line)
            return 0 if check.ok else 1
        try:
            result = san_paths(args.paths, rule_ids=args.rule)
        except ValueError as exc:
            print(f"repro san: {exc}", file=sys.stderr)
            return 2
        print(render_json(result) if args.fmt == "json" else render_text(result))
        baseline_rc = _apply_baseline(args, result, "san")
        if baseline_rc is not None:
            return baseline_rc
        return 0 if result.ok else 1

    if args.command == "check":
        from repro.analysis.check import run_check

        report = run_check(args.paths, require_mypy=args.require_mypy)
        print(report.to_json() if args.fmt == "json" else report.to_text())
        return 0 if report.ok else 1

    if args.command == "bench":
        import json as _json

        from repro.bench import (
            DEFAULT_TOLERANCE,
            all_specs,
            compare_bench_docs,
            run_bench,
            validate_bench_doc,
            write_bench_doc,
        )

        def load_doc(path: str):
            with open(path, "r", encoding="utf-8") as handle:
                return _json.load(handle)

        tolerance = (
            DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
        )

        def gate_against_baseline(doc) -> int:
            """Compare ``doc`` to --baseline; 0 pass, non-zero fail."""
            try:
                baseline = load_doc(args.baseline)
            except (OSError, ValueError) as exc:
                print(f"repro bench: {exc}", file=sys.stderr)
                return 2
            regressions = compare_bench_docs(doc, baseline, tolerance=tolerance)
            for regression in regressions:
                print(f"baseline: {regression}", file=sys.stderr)
            print(
                f"repro bench: baseline {args.baseline} "
                + (
                    f"FAILED ({len(regressions)} regression(s), "
                    f"tolerance {tolerance:.0%})"
                    if regressions
                    else f"ok (tolerance {tolerance:.0%})"
                )
            )
            return 1 if regressions else 0

        if args.list_benches:
            for spec in all_specs():
                marker = "quick" if spec.quick else "full "
                print(f"{marker}  {spec.kind:<8}  {spec.name}")
            return 0
        if args.check:
            try:
                doc = load_doc(args.check)
            except (OSError, ValueError) as exc:
                print(f"repro bench: {exc}", file=sys.stderr)
                return 2
            problems = validate_bench_doc(doc)
            for problem in problems:
                print(f"schema: {problem}", file=sys.stderr)
            print(
                f"repro bench: {args.check} "
                + ("FAILED schema check" if problems else "schema ok")
            )
            if problems:
                return 1
            if args.baseline:
                return gate_against_baseline(doc)
            return 0
        only = args.only.split(",") if args.only else None
        try:
            doc = run_bench(
                quick=args.quick,
                workers=args.workers,
                only=only,
                root_seed=args.seed,
                scheduler=args.scheduler,
            )
        except ValueError as exc:
            print(f"repro bench: {exc}", file=sys.stderr)
            return 2
        path = write_bench_doc(doc, args.out)
        for entry in doc["benchmarks"]:
            rate = (
                f"{entry['events_per_sec']:>12,.0f} ev/s"
                if entry["status"] == "ok"
                else f"ERROR {entry['error']}"
            )
            print(f"{entry['name']:<36} {entry['wall_s']:>8.3f}s  {rate}")
        totals = doc["totals"]
        print(
            f"bench: {totals['ok']}/{len(doc['benchmarks'])} ok, "
            f"{totals['events']:,} events in {totals['wall_s']:.2f}s "
            f"({totals['events_per_sec']:,.0f} ev/s aggregate) -> {path}"
        )
        if totals["errors"]:
            return 1
        if args.baseline:
            return gate_against_baseline(doc)
        return 0

    if args.command == "cluster":
        from repro.sim.errors import ConfigurationError
        from repro.overlay.cluster import (
            run_cluster,
            tcp_ring_spec,
            udp_ring_spec,
        )

        common = dict(
            num_hosts=args.hosts,
            message_size=args.size,
            seed=args.seed,
            scheduler=args.scheduler,
            falcon=args.falcon,
            bandwidth_gbps=args.bandwidth,
            propagation_us=args.propagation_us,
            warmup_us=args.warmup_us,
            duration_us=args.duration_us,
        )
        if args.proto == "udp":
            spec = udp_ring_spec(rate_pps=args.rate, **common)
        else:
            spec = tcp_ring_spec(window_msgs=args.window, **common)
        transport = args.transport or ("inline" if args.shards == 1 else "process")
        try:
            result = run_cluster(spec, shards=args.shards, transport=transport)
        except ConfigurationError as exc:
            print(f"repro cluster: {exc}", file=sys.stderr)
            return 2
        table = Table(
            ["metric", "value"],
            title=f"{args.proto} ring, {args.hosts} hosts, "
            f"{result.shards} shard(s) via {result.transport}",
        )
        table.add_row("messages delivered", f"{result.messages_delivered:,}")
        table.add_row("message rate", f"{result.message_rate_pps/1e3:,.1f} kmsg/s")
        table.add_row("goodput", f"{result.goodput_gbps:.3f} Gbps")
        table.add_row("avg latency", f"{result.avg_latency_us:.1f} us")
        table.add_row("sim events", f"{result.events_processed:,}")
        table.add_row("sync windows", f"{result.windows_run:,}")
        table.add_row("cross-shard records", f"{result.records_exchanged:,}")
        print(table.render())
        for host_doc in result.per_host:
            print(
                f"host {host_doc['host']}: "
                f"{host_doc['messages_delivered']:,} delivered, "
                f"{host_doc['message_rate_pps']/1e3:,.1f} kmsg/s"
            )
        return 0

    if args.command == "validate":
        from repro.validate import run_validation

        outcomes = run_validation(
            suites=args.suite,
            quick=args.quick,
            regen_goldens=args.regen_goldens,
            golden_dir=args.golden_dir,
            inject=args.inject,
        )
        for outcome in outcomes:
            print(outcome.render())
        failed = [outcome for outcome in outcomes if not outcome.ok]
        print(
            f"validate: {len(outcomes) - len(failed)}/{len(outcomes)} scenarios ok"
            + (f", {len(failed)} FAILED" if failed else "")
        )
        return 1 if failed else 0

    if args.command == "stress":
        result = _experiment(args).run_udp_stress(
            args.size, clients=args.clients,
            duration_ms=args.duration_ms, warmup_ms=args.warmup_ms,
        )
        _print_result(result)
        return 0

    if args.command == "fixed":
        result = _experiment(args).run_udp_fixed(
            args.size, rate_pps=args.rate, poisson=args.poisson,
            duration_ms=args.duration_ms, warmup_ms=args.warmup_ms,
        )
        _print_result(result)
        return 0

    if args.command == "tcp":
        result = _experiment(args).run_tcp_stream(
            args.size, window_msgs=args.window,
            duration_ms=args.duration_ms, warmup_ms=args.warmup_ms,
        )
        _print_result(result)
        return 0

    if args.command == "latency":
        table = Table(
            ["case", "avg us", "p90 us", "p99 us", "p99.9 us"],
            title=f"latency at {args.rate/1e3:.0f} kmsg/s, {args.size} B",
        )
        cases = [("host", False), ("overlay", False), ("overlay", True)]
        for mode, use_falcon in cases:
            falcon = (
                FalconConfig(
                    cpus=[int(cpu) for cpu in args.falcon_cpus.split(",")]
                )
                if use_falcon
                else None
            )
            exp = Experiment(
                mode=mode, falcon=falcon, kernel=args.kernel,
                bandwidth_gbps=args.bandwidth, seed=args.seed,
            )
            result = exp.run_udp_fixed(
                args.size, rate_pps=args.rate, poisson=True,
                duration_ms=args.duration_ms, warmup_ms=args.warmup_ms,
            )
            label = f"{mode}+falcon" if use_falcon else mode
            table.add_row(
                label,
                *[result.latency[p] for p in ("avg", "p90", "p99", "p99.9")],
            )
        print(table.render())
        return 0

    return 1  # pragma: no cover - unreachable with required subcommands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
