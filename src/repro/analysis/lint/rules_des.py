"""DES-discipline rules (DES2xx).

The simulated system (``repro.sim`` / ``kernel`` / ``hw`` / ``overlay``
/ ``core`` / ``workloads``) runs entirely under simulated time on
simulated cores. Real concurrency, real blocking calls and anonymous
service-time constants all undermine that: the first two make the
process nondeterministic or stall the event loop, the third scatters
calibration numbers outside the cost model where no experiment sweep or
kernel-version preset can see them.

The harness layers (``metrics``, ``experiments``, ``validate``,
``cli``) are explicitly out of scope — they are allowed to write result
files and time themselves.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Set, Tuple

from repro.analysis.lint.core import (
    SIMULATED_SCOPE,
    FileContext,
    Finding,
    Rule,
    last_segment,
    walk_numeric_literals,
)

#: Modules providing real (OS-level) concurrency or schedulers.
CONCURRENCY_MODULES: Set[str] = {
    "threading",
    "_thread",
    "asyncio",
    "multiprocessing",
    "concurrent",
    "sched",
    "selectors",
    "queue",
    "socketserver",
    "signal",
}

#: Blocking call targets by fully-qualified name.
BLOCKING_EXACT: Set[str] = {
    "time.sleep",
    "os.system",
    "os.popen",
    "os.fork",
    "os.forkpty",
    "os.wait",
    "os.waitpid",
}

#: Module prefixes any call into which blocks on the outside world.
BLOCKING_PREFIXES: Tuple[str, ...] = (
    "subprocess.",
    "socket.",
    "requests.",
    "urllib.",
    "http.",
)

#: Bare builtins that block on files or the terminal.
BLOCKING_BUILTINS: Set[str] = {"open", "input", "breakpoint"}

#: The module allowed to define service-time constants.
COST_MODULE = "repro.kernel.costs"


class RealConcurrencyRule(Rule):
    """DES201: OS concurrency primitives inside the simulated system."""

    id = "DES201"
    title = "no real concurrency in simulated code"
    rationale = (
        "Simulated concurrency is expressed as events on the DES engine; "
        "threads/async/processes introduce host-scheduler nondeterminism "
        "and bypass the per-core serialization the model depends on."
    )
    scope = SIMULATED_SCOPE
    # The shard engine's worker transport is the sanctioned boundary: it
    # spawns shard processes and speaks pipes, and nothing else in the
    # simulated scope may. Keeping the carve-out here (not as pragmas)
    # makes the boundary auditable in one place.
    exempt = ("repro.sim.shard.transport",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in CONCURRENCY_MODULES:
                        yield self.finding(
                            ctx, node,
                            f"import of real-concurrency module "
                            f"{alias.name!r} — model concurrency as DES "
                            "events (sim.engine), not OS primitives",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue
                root = (node.module or "").split(".")[0]
                if root in CONCURRENCY_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import from real-concurrency module "
                        f"{node.module!r} — model concurrency as DES "
                        "events (sim.engine), not OS primitives",
                    )


class BlockingCallRule(Rule):
    """DES202: blocking calls inside event/stage handlers."""

    id = "DES202"
    title = "no blocking calls in simulated code"
    rationale = (
        "An event handler that sleeps or touches the filesystem/network "
        "stalls the whole event loop in real time and couples results to "
        "the host environment. All waiting is sim.schedule; all I/O "
        "belongs to the harness layers."
    )
    scope = SIMULATED_SCOPE
    # Same carve-out as DES201: the transport's pipe waits are real by
    # design (they are bounded by poll timeouts, not simulated time).
    exempt = ("repro.sim.shard.transport",)

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            kind, name = resolved
            if kind == "bare":
                if name in BLOCKING_BUILTINS:
                    yield self.finding(
                        ctx, node,
                        f"blocking builtin {name}() in simulated code — "
                        "I/O belongs in the harness (metrics/experiments)",
                    )
                continue
            if name in BLOCKING_EXACT or any(
                name.startswith(prefix) for prefix in BLOCKING_PREFIXES
            ):
                yield self.finding(
                    ctx, node,
                    f"blocking call {name}() in simulated code — use "
                    "sim.schedule for waiting; real I/O belongs in the "
                    "harness",
                )


class MagicServiceTimeRule(Rule):
    """DES203: anonymous service-time literals outside kernel/costs.py."""

    id = "DES203"
    title = "service times come from kernel.costs"
    rationale = (
        "Every modelled delay is a calibrated quantity. A literal in a "
        "schedule()/submit() call is invisible to the cost model, to the "
        "kernel-version presets and to sensitivity sweeps; name it in "
        "CostModel and reference it."
    )
    scope = SIMULATED_SCOPE

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        assert ctx.tree is not None
        in_cost_module = ctx.module == COST_MODULE
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = last_segment(node.func)
            if name == "FuncCost" and not in_cost_module:
                yield self.finding(
                    ctx, node,
                    "FuncCost constructed outside kernel/costs.py — all "
                    "service-time definitions live in the cost model",
                )
                continue
            if in_cost_module:
                continue
            for arg in self._duration_args(name, node):
                for literal in walk_numeric_literals(arg):
                    yield self.finding(
                        ctx, literal,
                        f"magic service-time literal {literal.value!r} in "
                        f"{name}() — reference a named CostModel constant "
                        "instead",
                    )

    @staticmethod
    def _duration_args(name: Optional[str], node: ast.Call) -> Iterable[ast.expr]:
        """The argument expressions of ``node`` that carry a delay/duration.

        ``sim.schedule(delay, fn, *payload)`` / ``schedule_at(time, ...)``
        carry it first; ``Cpu.submit(context, label, duration, fn,
        *payload)`` third (falling back to first for pool-style
        ``submit(duration, done)``); ``Cpu.submit_multi(context, charges,
        fn, *payload)`` second. Payload/callback arguments are never
        scanned — integers are legitimate event arguments there.
        """
        if name in ("schedule", "schedule_at", "post", "post_at", "post_batch"):
            return node.args[:1]
        if name == "submit":
            return node.args[2:3] if len(node.args) >= 3 else node.args[:1]
        if name == "submit_multi":
            return node.args[1:2]
        return ()


DES_RULES = (
    RealConcurrencyRule(),
    BlockingCallRule(),
    MagicServiceTimeRule(),
)
