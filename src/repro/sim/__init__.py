"""Discrete-event simulation substrate.

The :mod:`repro.sim` package provides the foundation everything else in the
reproduction is built on: a deterministic event-driven simulator
(:class:`~repro.sim.engine.Simulator`), named deterministic random-number
streams (:class:`~repro.sim.rng.RngRegistry`), and measurement primitives
(:mod:`repro.sim.stats`).

Time is measured in **microseconds** throughout the code base; the helper
constants :data:`~repro.sim.clock.US`, :data:`~repro.sim.clock.MS` and
:data:`~repro.sim.clock.SEC` make conversions explicit.
"""

from repro.sim.clock import MS, NS, SEC, US
from repro.sim.context import SimContext
from repro.sim.engine import Event, Simulator, global_events_processed
from repro.sim.errors import SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import (
    CalendarScheduler,
    HeapScheduler,
    Scheduler,
    make_scheduler,
)
from repro.sim.stats import (
    Counter,
    Histogram,
    LatencyRecorder,
    RateMeter,
    TimeWeightedValue,
    WelfordAccumulator,
)

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "Event",
    "Simulator",
    "SimContext",
    "SimulationError",
    "RngRegistry",
    "Scheduler",
    "HeapScheduler",
    "CalendarScheduler",
    "make_scheduler",
    "global_events_processed",
    "Counter",
    "Histogram",
    "LatencyRecorder",
    "RateMeter",
    "TimeWeightedValue",
    "WelfordAccumulator",
]
