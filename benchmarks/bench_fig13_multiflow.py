"""Figure 13 — multi-flow UDP and TCP throughput with dedicated cores."""

from conftest import run_figure

from repro.experiments import fig13_multiflow


def test_fig13_multiflow(benchmark, quick):
    out = run_figure(benchmark, fig13_multiflow, quick)

    for (proto, kernel), series in out.series.items():
        for flows, values in series.items():
            # Falcon consistently outperforms the vanilla overlay once
            # there is steering pressure (>1 flow).
            if flows >= 2:
                assert values["Falcon"] > values["Con"], (proto, kernel, flows)

    # TCP: GRO splitting helps the host network too (Host+ >= Host), and
    # Falcon can beat even the plain host network (the paper: up to 37%).
    udp_any = False
    for kernel in ("4.19", "5.4"):
        key = ("tcp", kernel)
        if key not in out.series:
            continue
        series = out.series[key]
        flows = max(series)
        values = series[flows]
        assert values["Host+"] >= values["Host"] * 0.98
        assert values["Falcon"] > values["Host"] * 0.9
