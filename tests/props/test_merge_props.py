"""Property-based tests for GRO coalescing and IP defragmentation.

Invariant under test: merging never loses or duplicates bytes, whatever
the fragment count, arrival order (defrag) or flush timing (GRO).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel.defrag import DefragEngine
from repro.kernel.gro import GroEngine
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb
from repro.sim.engine import Simulator


def make_message(flow, msg_id, sizes):
    total = sum(sizes)
    return [
        Skb(
            flow,
            size=size,
            msg_id=msg_id,
            msg_size=total,
            frag_index=index,
            frag_count=len(sizes),
        )
        for index, size in enumerate(sizes)
    ]


@given(
    st.lists(
        st.lists(st.integers(1, 1480), min_size=1, max_size=12),
        min_size=1,
        max_size=8,
    ),
    st.data(),
)
def test_defrag_conserves_bytes_any_arrival_order(messages, data):
    sim = Simulator()
    defrag = DefragEngine(sim)
    flow = FlowKey.make(1, 2, PROTO_UDP)
    all_frags = []
    expected = {}
    for msg_id, sizes in enumerate(messages):
        expected[msg_id] = sum(sizes)
        all_frags.extend(make_message(flow, msg_id, sizes))
    order = data.draw(st.permutations(all_frags))
    emitted = {}
    for frag in order:
        out = defrag.feed(frag)
        if out is not None:
            assert out.msg_id not in emitted, "duplicate emission"
            emitted[out.msg_id] = out.size
    assert emitted == expected
    assert defrag.pending == 0


@given(
    st.lists(st.integers(1, 1448), min_size=1, max_size=16),
    st.data(),
)
def test_gro_conserves_bytes_with_random_flushes(sizes, data):
    """Segments arrive in order (TCP), but a flush may hit at any point;
    the emitted skbs must cover exactly the message bytes, in order."""
    gro = GroEngine()
    flow = FlowKey.make(1, 2, PROTO_TCP)
    segments = make_message(flow, 0, sizes)
    flush_points = data.draw(
        st.sets(st.integers(0, len(segments) - 1), max_size=len(segments))
    )
    emitted = []
    for index, segment in enumerate(segments):
        out = gro.feed(segment)
        if out is not None:
            emitted.append(out)
        if index in flush_points:
            emitted.extend(gro.flush())
    emitted.extend(gro.flush())
    assert sum(skb.size for skb in emitted) == sum(sizes)
    assert sum(skb.segs for skb in emitted) == len(sizes)
    assert gro.held_count == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(1, 1448)),
        min_size=2,
        max_size=40,
    )
)
def test_gro_never_merges_across_flows(stream):
    """Interleaved segments from different flows must never co-merge."""
    flows = [FlowKey.make(1, 2, PROTO_TCP, sport=i) for i in range(4)]
    counters = {}
    segments = []
    for flow_index, size in stream:
        flow = flows[flow_index]
        seq = counters.get(flow_index, 0)
        counters[flow_index] = seq + 1
        segments.append((flow_index, size, seq))
    totals = {index: 0 for index in range(4)}
    gro = GroEngine()
    # Build per-flow messages: every flow's stream is one message.
    for flow_index, size, seq in segments:
        count = counters[flow_index]
        skb = Skb(
            flows[flow_index],
            size=size,
            msg_id=0,
            msg_size=sum(s for f, s, _ in segments if f == flow_index),
            frag_index=seq,
            frag_count=count,
        )
        out = gro.feed(skb)
        if out is not None:
            totals[flow_index] += out.size
    for skb in gro.flush():
        totals[flows.index(skb.flow)] += skb.size
    for flow_index in range(4):
        expected = sum(size for f, size, _ in segments if f == flow_index)
        assert totals[flow_index] == expected
