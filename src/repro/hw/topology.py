"""Machine topology: cores + accounting + shared services.

A :class:`Machine` bundles the per-host hardware state every kernel
component needs: the simulator handle, the CPU array, CPU accounting,
interrupt counters, the locality model, and named RNG streams. The paper's
testbed machines (dual 10-core Xeon, hyperthreading on) are represented by
the default 20-core configuration.
"""

from __future__ import annotations

from typing import List, Optional

from repro.hw.cache import LocalityModel
from repro.hw.cpu import Cpu
from repro.metrics.counters import InterruptCounters
from repro.metrics.cpuacct import CpuAccounting
from repro.sim.context import SimContext
from repro.sim.engine import Simulator
from repro.sim.errors import ConfigurationError
from repro.sim.rng import RngRegistry


class Machine:
    """A host: an array of cores plus measurement plumbing."""

    def __init__(
        self,
        sim: Simulator,
        num_cpus: int = 20,
        cores_per_socket: int = 10,
        locality: Optional[LocalityModel] = None,
        rng: Optional[RngRegistry] = None,
        name: str = "host",
        ctx: Optional[SimContext] = None,
    ) -> None:
        if num_cpus < 1:
            raise ConfigurationError("machine needs at least one CPU")
        if ctx is None:
            # Legacy construction path: wrap the run state in a private
            # context so downstream code can rely on ``machine.ctx``.
            ctx = SimContext(sim=sim, rng=rng, name=name)
        self.ctx = ctx
        self.sim = ctx.sim
        self.name = name
        self.acct = CpuAccounting()
        self.interrupts = InterruptCounters()
        self.cpus: List[Cpu] = [
            Cpu(ctx.sim, index, self.acct) for index in range(num_cpus)
        ]
        self.cores_per_socket = cores_per_socket
        self.locality = locality or LocalityModel(cores_per_socket=cores_per_socket)
        self.rng = rng if rng is not None else ctx.rng
        ctx.register_monitored(self.interrupts, *self.cpus)

    @property
    def num_cpus(self) -> int:
        return len(self.cpus)

    def cpu(self, index: int) -> Cpu:
        return self.cpus[index]

    def socket_of(self, cpu_index: int) -> int:
        return cpu_index // self.cores_per_socket

    def loads(self) -> List[float]:
        """Recent per-core loads (refreshed by the kernel timer tick)."""
        return [cpu.load for cpu in self.cpus]

    def average_load(self, cpu_indices: Optional[List[int]] = None) -> float:
        """Mean recent load over a CPU subset (defaults to all cores)."""
        if cpu_indices is None:
            values = [cpu.load for cpu in self.cpus]
        else:
            values = [self.cpus[index].load for index in cpu_indices]
        return sum(values) / len(values) if values else 0.0
