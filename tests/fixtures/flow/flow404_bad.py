"""FLOW404: packet dropped without a drop-counter increment."""


class BacklogPressure:
    def shed(self, stack, skb):
        stack.kfree_skb(skb)  # expect: FLOW404


def shed_oldest(stack, old_skb):
    stack.drop_skb(old_skb)  # expect: FLOW404
