"""Interrupt counters — the simulator's ``/proc/interrupts``.

Tracks the interrupt classes the paper's Figure 4 compares:

* ``hardirq``   — NIC hardware interrupts,
* ``NET_RX``    — network-receive softirq raises,
* ``RES``       — rescheduling IPIs (raised when a softirq is queued on a
  *remote* CPU and that CPU must be poked),
* ``CAL``       — function-call IPIs (not used by the rx path but kept for
  completeness),
* ``TIMER``     — local timer interrupts.

Counts are kept both globally and per CPU.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.stats import Counter

HARDIRQ = "hardirq"
NET_RX = "NET_RX"
NET_TX = "NET_TX"
RES = "RES"
CAL = "CAL"
TIMER = "TIMER"

KNOWN_KINDS = (HARDIRQ, NET_RX, NET_TX, RES, CAL, TIMER)


class InterruptCounters:
    """Per-CPU and global interrupt counters."""

    def __init__(self) -> None:
        self._global = Counter()
        self._per_cpu: Dict[int, Counter] = {}
        #: Optional :class:`repro.validate.InvariantMonitor` hook.
        self.monitor = None

    def record(self, kind: str, cpu: int, amount: int = 1) -> None:
        if self.monitor is not None:
            self.monitor.on_counter_record(kind, cpu, amount)
        self._global.add(kind, amount)
        per_cpu = self._per_cpu.get(cpu)
        if per_cpu is None:
            per_cpu = Counter()
            self._per_cpu[cpu] = per_cpu
        per_cpu.add(kind, amount)

    def total(self, kind: str) -> int:
        return self._global.get(kind)

    def on_cpu(self, kind: str, cpu: int) -> int:
        per_cpu = self._per_cpu.get(cpu)
        return per_cpu.get(kind) if per_cpu else 0

    def snapshot(self) -> Dict[str, int]:
        return self._global.snapshot()

    def diff(self, earlier: Dict[str, int]) -> Dict[str, int]:
        return self._global.diff(earlier)
