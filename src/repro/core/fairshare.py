"""Tenant-fair CPU allocation for Falcon — the paper's open problem.

Section 6.4: *"Falcon's effectiveness depends on access to idle CPU
cycles for parallelization. In a multiple-user environment, policies on
how to fairly allocate cycles for parallelizing each user's flows need
to be further developed."*

This module develops one such policy: **weighted partitioning of
FALCON_CPUS**. Each tenant is assigned a contiguous slice of the Falcon
CPU set proportional to its weight; a tenant's softirq stages are
steered (with the usual two-choice rule) only within its own slice, so
one tenant's elephant flows cannot consume the cycles another tenant's
parallelization depends on. Flows of unregistered tenants fall back to
the full set (best effort).

Usage::

    steering = stack.falcon
    fair = FairShareBalancer(FalconConfig(...).load_threshold)
    fair.set_tenants({"gold": 3, "bronze": 1}, steering.config.cpus)
    fair.assign_flow(flow, "gold")
    steering.balancer = fair
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.balancing import _index
from repro.kernel.hashing import hash_32
from repro.kernel.skb import FlowKey
from repro.sim.errors import ConfigurationError


def partition_cpus(
    cpus: Sequence[int], weights: Dict[str, float]
) -> Dict[str, List[int]]:
    """Split a CPU list into per-tenant slices proportional to weight.

    Every tenant receives at least one CPU; remainders go to the heaviest
    tenants first (largest-remainder method). Deterministic: tenants are
    processed in sorted-name order.

    >>> partition_cpus([3, 4, 5, 6], {"a": 3, "b": 1})
    {'a': [3, 4, 5], 'b': [6]}
    """
    if not weights:
        raise ConfigurationError("need at least one tenant")
    if len(cpus) < len(weights):
        raise ConfigurationError(
            f"{len(weights)} tenants need at least that many CPUs, got {len(cpus)}"
        )
    if any(weight <= 0 for weight in weights.values()):
        raise ConfigurationError("tenant weights must be positive")
    total = sum(weights.values())
    names = sorted(weights)
    ideal = {name: weights[name] / total * len(cpus) for name in names}
    # Floor of the ideal share, but at least one CPU per tenant.
    counts = {name: max(int(ideal[name]), 1) for name in names}
    # Largest-remainder adjustment to make the counts sum to len(cpus).
    while sum(counts.values()) < len(cpus):
        name = max(names, key=lambda n: (ideal[n] - counts[n], weights[n], n))
        counts[name] += 1
    while sum(counts.values()) > len(cpus):
        candidates = [name for name in names if counts[name] > 1]
        name = min(
            candidates, key=lambda n: (ideal[n] - counts[n], weights[n], n)
        )
        counts[name] -= 1
    partitions: Dict[str, List[int]] = {}
    cursor = 0
    for name in names:
        partitions[name] = list(cpus[cursor : cursor + counts[name]])
        cursor += counts[name]
    return partitions


class FairShareBalancer:
    """Two-choice balancing confined to per-tenant CPU partitions."""

    def __init__(self, load_threshold: float = 0.85) -> None:
        self.load_threshold = load_threshold
        self._partitions: Dict[str, List[int]] = {}
        self._tenant_by_flow_hash: Dict[int, str] = {}
        self.second_choices = 0
        self.unassigned_selections = 0

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def set_tenants(
        self, weights: Dict[str, float], cpus: Sequence[int]
    ) -> Dict[str, List[int]]:
        self._partitions = partition_cpus(cpus, weights)
        return dict(self._partitions)

    def assign_flow(self, flow: FlowKey, tenant: str) -> None:
        if tenant not in self._partitions:
            raise ConfigurationError(f"unknown tenant {tenant!r}")
        self._tenant_by_flow_hash[flow.hash] = tenant

    def partition_of(self, tenant: str) -> List[int]:
        return list(self._partitions[tenant])

    # ------------------------------------------------------------------
    # Balancer protocol (see repro.core.balancing)
    # ------------------------------------------------------------------
    def select(
        self, machine, cpus: List[int], skb_hash: int, ifindex: int
    ) -> int:
        tenant = self._tenant_by_flow_hash.get(skb_hash)
        if tenant is None:
            self.unassigned_selections += 1
            pool = cpus
        else:
            pool = self._partitions[tenant]
        first_hash = hash_32(skb_hash + ifindex)
        cpu = pool[_index(first_hash, len(pool))]
        if machine.cpus[cpu].load < self.load_threshold:
            return cpu
        self.second_choices += 1
        return pool[_index(hash_32(first_hash), len(pool))]


def use_fair_share(
    steering, weights: Dict[str, float]
) -> FairShareBalancer:
    """Swap a stack's Falcon balancer for a tenant-fair one.

    Returns the balancer so flows can be assigned:
    ``use_fair_share(stack.falcon, {"a": 1, "b": 1}).assign_flow(flow, "a")``.
    """
    balancer = FairShareBalancer(steering.config.load_threshold)
    balancer.set_tenants(weights, steering.config.cpus)
    steering.balancer = balancer
    return balancer
