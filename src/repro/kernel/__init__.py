"""Linux network-stack substrate.

This package models the in-kernel receive pipeline the paper profiles
(Section 2–3): hardware interrupts, NAPI polling, softirq scheduling,
per-CPU backlog queues, RSS/RPS packet steering, GRO coalescing, IP
fragment reassembly, the protocol layers, and socket delivery — plus the
virtual devices a container overlay network adds (VXLAN, bridge, veth).

The assembled receive path for one host lives in
:class:`repro.kernel.stack.NetworkStack`.
"""

from repro.kernel.costs import CostModel
from repro.kernel.skb import FlowKey, Skb

# NetworkStack / StackConfig live in repro.kernel.stack; they are not
# imported here because the stack pulls in repro.core (Falcon) and a
# package-level import would create a cycle for users importing
# repro.core first. Import them via ``from repro.kernel.stack import ...``
# or from the top-level ``repro`` package.

__all__ = ["CostModel", "FlowKey", "Skb"]
