"""Dynamic softirq splitting — the paper's stated future work.

Section 6.4: *"we employ offline profiling to determine the functions
within a softirq that should be split and require the kernel to be
recompiled ... there is no way to selectively disable function-level
splitting while keeping the rest of Falcon running ... We are
investigating a dynamic method for function-level splitting."*

This module implements that method in the simulator. The stack is built
with the split transition in place, but the transition consults a
runtime switch (the Section 6.4 workaround of targeting the current core
is used while the split is *inactive*, so the split functions never
move). A controller samples the driver core's load on the kernel's timer
tick and flips the switch with hysteresis:

* activate when the driver core has been saturated (load above
  ``activate_threshold``) for ``patience`` consecutive samples — the
  Figure 9a condition under which splitting pays;
* deactivate when load falls below ``release_threshold`` — splitting is
  pure overhead for GRO-light traffic (the Figure 12b effect).
"""

from __future__ import annotations

from typing import Optional

from repro.hw.topology import Machine


class SplitSwitch:
    """The runtime flag the split transition consults."""

    __slots__ = ("active",)

    def __init__(self, active: bool = False) -> None:
        self.active = active


class DynamicSplitController:
    """Toggles GRO splitting from measured driver-core load."""

    def __init__(
        self,
        machine: Machine,
        switch: SplitSwitch,
        driver_cpu: int = 0,
        activate_threshold: float = 0.92,
        release_threshold: float = 0.60,
        patience: int = 3,
        sample_us: float = 500.0,
    ) -> None:
        if not 0.0 < release_threshold < activate_threshold <= 1.0:
            raise ValueError("need 0 < release < activate <= 1")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.machine = machine
        self.switch = switch
        self.driver_cpu = driver_cpu
        self.activate_threshold = activate_threshold
        self.release_threshold = release_threshold
        self.patience = patience
        self.sample_us = sample_us
        self._hot_samples = 0
        self._started = False
        #: Transition counters for observability/tests.
        self.activations = 0
        self.deactivations = 0

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.machine.sim.post(self.sample_us, self._sample)

    def _sample(self) -> None:
        load = self.machine.cpus[self.driver_cpu].load
        if self.switch.active:
            if load < self.release_threshold:
                self.switch.active = False
                self.deactivations += 1
                self._hot_samples = 0
        else:
            if load >= self.activate_threshold:
                self._hot_samples += 1
                if self._hot_samples >= self.patience:
                    self.switch.active = True
                    self.activations += 1
                    self._hot_samples = 0
            else:
                self._hot_samples = 0
        self.machine.sim.post(self.sample_us, self._sample)


def attach_dynamic_splitting(
    stack,
    driver_cpu: int = 0,
    activate_threshold: float = 0.92,
    release_threshold: float = 0.60,
    patience: int = 3,
) -> DynamicSplitController:
    """Wire a controller to a stack built with ``split_gro=True``.

    The stack must have a Falcon instance with GRO splitting compiled in;
    the controller then owns the decision of *when* the split half
    actually moves to another core.
    """
    falcon = stack.falcon
    if falcon is None or not falcon.config.split_gro:
        raise ValueError(
            "dynamic splitting requires a Falcon stack built with split_gro=True"
        )
    switch = SplitSwitch(active=False)
    # Replace the static split selector with a switched one.
    split_stage = stack.stages.get("pnic")
    if split_stage is None or "pnic_gro" not in stack.stages:
        raise ValueError("stack has no split pnic stage")
    static_selector = falcon.selector(
        stack.stages["pnic_gro"].ifindex
    )

    def switched_selector(skb, current_cpu):
        if switch.active:
            return static_selector(skb, current_cpu)
        return current_cpu

    split_stage.exit.selector = switched_selector
    controller = DynamicSplitController(
        stack.machine,
        switch,
        driver_cpu=driver_cpu,
        activate_threshold=activate_threshold,
        release_threshold=release_threshold,
        patience=patience,
    )
    controller.start()
    return controller
