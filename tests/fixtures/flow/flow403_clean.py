"""Clean twin of flow403_bad: frees on disjoint paths only."""


def free_and_return(stack, skb, done):
    if done:
        stack.consume_skb(skb)
        return
    stack.netif_rx(skb)


def maybe_free(stack, skb, done):
    # One branch frees, the other does not: at the join the packet is
    # only *possibly* freed, and the must-analysis stays silent.
    if done:
        stack.consume_skb(skb)
    stack.process_backlog(skb)
