"""ORD501-503: shard/worker identity leaking into the event stream.

Each leak here is invisible at shards=1 and silently breaks 1-vs-N-shard
byte-identity: timestamps, seeds and payloads must be functions of the
workload, never of the partition layout.
"""

import os


class ShardClock:
    def __init__(self, sim, shard_index):
        self.sim = sim
        self.shard_index = shard_index
        self.worker_id = 0

    def skewed_tick(self, sim):
        skew = self.shard_index * 0.25
        sim.post_at(sim.now + skew, self.on_tick)  # expect: ORD501

    def reseed(self, rng):
        rng.seed(os.getpid())  # expect: ORD502

    def tag_payload(self, sim, time_us, payload):
        sim.post_at(time_us, self.deliver, (payload, self.worker_id))  # expect: ORD503

    def emit(self, time_us, kind, dst):
        return CrossShardEvent(time_us, self.shard_index, 0, kind, dst, ())  # expect: ORD503


def make_skewed_host(base_seed, shard_index, factory):
    return factory(seed=base_seed * 1000 + shard_index)  # expect: ORD502
