"""Figure 9a — first-stage saturation under TCP 4 KB and GRO splitting."""

from conftest import run_figure

from repro.experiments import fig09_splitting


def test_fig09_splitting(benchmark, quick):
    out = run_figure(benchmark, fig09_splitting, quick)
    driver = out.series["driver_util"]

    # TCP 4 KB saturates the driver core; UDP and small TCP do not.
    assert driver["TCP 4KB"] > 90.0
    assert driver["UDP 4KB"] < driver["TCP 4KB"]
    assert driver["TCP 1KB"] < driver["TCP 4KB"]

    # GRO splitting takes real load off the driver core.
    assert out.series["split_GRO-split"] < out.series["split_vanilla"] - 0.05
