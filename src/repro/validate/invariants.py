"""Runtime invariant monitors — the simulator's machine-checked safety net.

The whole reproduction stands on the DES being a faithful stand-in for
the kernel rx pipeline; a silent conservation or ordering bug in the
simulator would invalidate every figure. An :class:`InvariantMonitor`
attaches to one host's :class:`~repro.kernel.stack.NetworkStack` and
checks, while the simulation runs:

* **Clock monotonicity** — the engine never executes an event timestamped
  before the current clock.
* **Per-core serialization** — a :class:`~repro.hw.cpu.Cpu` is a
  non-preemptive serialized resource: no two work items may overlap on
  one core, and no item may complete before its busy interval ends.
* **Counter sanity** — interrupt counters only ever increase, and no
  negative amounts are recorded.
* **Non-negative, bounded queues** — socket receive queues never exceed
  their ``rmem`` bound; backlog drop counters never run backwards.
* **Packet conservation** — every wire packet accepted by the NIC is
  eventually delivered, dropped (ring / backlog / socket / unroutable),
  consumed as control traffic, garbage-collected by the defrag timer, or
  still queued somewhere observable. The ledger is exact: at any audit
  the packets alive in the pipeline must be at least the packets visible
  in queues (the difference is in-flight batch state), and at quiescence
  the two must be equal.

Attachment is explicit and hooks are ``None``-guarded at every hot-path
call site, so an unattached run pays one attribute check per event and
nothing else. Violations raise :class:`InvariantViolation` immediately —
fail fast, at the event that broke the invariant, with the simulation
clock in the message.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.counters import NET_RX
from repro.sim.errors import ReproError

#: Terminal outcomes a wire packet can reach, as reported to
#: :meth:`InvariantMonitor.on_terminal` (plus ring drops via
#: :meth:`InvariantMonitor.on_inject` and defrag GC via
#: :meth:`InvariantMonitor.on_defrag_timeout`).
TERMINAL_OUTCOMES = (
    "delivered",
    "socket_drop",
    "unroutable",
    "control",
    "backlog_drop",
    "ring_drop",
    "defrag_timeout",
)

#: Completion-time slack for float accumulation in busy-interval checks.
_TIME_EPS = 1e-6


class InvariantViolation(ReproError):
    """An invariant the simulation must uphold was observed broken."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"[{kind}] {message}")
        self.kind = kind


class InvariantMonitor:
    """Checks engine/kernel/metrics invariants on one host's stack.

    Usage::

        monitor = InvariantMonitor()
        monitor.attach(stack)
        ... run the workload ...
        monitor.check_conservation()   # at quiescence
        monitor.detach()
    """

    def __init__(self, audit_interval_us: float = 500.0) -> None:
        if audit_interval_us <= 0:
            raise ValueError("audit interval must be positive")
        self.audit_interval_us = audit_interval_us
        self.stack = None
        self.attached = False
        #: Wire packets accepted by the NIC since attach.
        self.generated = 0
        #: Wire packets per terminal outcome since attach.
        self.terminals: Dict[str, int] = {kind: 0 for kind in TERMINAL_OUTCOMES}
        #: Wire segments delivered via the flow-cache fast path (a subset
        #: of ``terminals["delivered"]``), total and per delivering core.
        self.fastpath_delivered = 0
        self.fastpath_by_cpu: Dict[int, int] = {}
        #: Violation messages raised so far (also raised as exceptions).
        self.violations: List[str] = []
        #: Periodic audits completed.
        self.audits = 0
        #: Total individual checks that passed (cheap progress signal).
        self.checks_passed = 0
        self._cpu_busy_until: Dict[int, float] = {}
        self._last_interrupts: Dict[str, int] = {}
        self._last_busy_us: List[float] = []
        self._audit_event = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, stack) -> "InvariantMonitor":
        """Wire this monitor into ``stack`` and all its components."""
        if self.attached:
            raise ValueError("monitor is already attached")
        self.stack = stack
        self.attached = True
        machine = stack.machine
        # The context fans the hook out to every registered hot-path
        # sink: simulator, stack, softnet, defrag engine, interrupt
        # counters, and each CPU.
        stack.ctx.attach_monitor(self)
        self._last_interrupts = machine.interrupts.snapshot()
        self._last_busy_us = [cpu.busy_us_total for cpu in machine.cpus]
        self._audit_event = stack.sim.schedule(self.audit_interval_us, self._audit)
        return self

    def detach(self) -> None:
        """Unhook from the stack; the run continues unmonitored."""
        if not self.attached:
            return
        stack = self.stack
        stack.ctx.detach_monitor()
        if self._audit_event is not None:
            stack.sim.cancel(self._audit_event)
            self._audit_event = None
        self.attached = False

    def _fail(self, kind: str, message: str) -> None:
        text = f"{message} (sim t={self.stack.sim.now:.3f}us)" if self.stack else message
        self.violations.append(f"[{kind}] {text}")
        raise InvariantViolation(kind, text)

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_event(self, now: float, event_time: float) -> None:
        if event_time < now:
            self._fail(
                "clock-monotonicity",
                f"event scheduled at t={event_time} executed while the clock "
                f"was already at t={now}",
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # CPU hooks (per-core serialization)
    # ------------------------------------------------------------------
    def on_cpu_start(self, cpu_index: int, now: float, duration: float) -> None:
        if duration < 0:
            self._fail(
                "cpu-work",
                f"core {cpu_index} started work with negative duration {duration}",
            )
        busy_until = self._cpu_busy_until.get(cpu_index)
        if busy_until is not None:
            self._fail(
                "core-serialization",
                f"core {cpu_index} started a work item at t={now:.3f} while "
                f"an earlier item runs until t={busy_until:.3f} — two stage "
                f"executions overlap on one CPU",
            )
        self._cpu_busy_until[cpu_index] = now + duration
        self.checks_passed += 1

    def on_cpu_complete(self, cpu_index: int, now: float) -> None:
        busy_until = self._cpu_busy_until.pop(cpu_index, None)
        if busy_until is None:
            return  # attached mid-flight; first completion has no start record
        if now + _TIME_EPS < busy_until:
            self._fail(
                "core-serialization",
                f"core {cpu_index} completed at t={now:.3f} before its busy "
                f"interval ends at t={busy_until:.3f}",
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Counter hooks
    # ------------------------------------------------------------------
    def on_counter_record(self, kind: str, cpu: int, amount: int) -> None:
        if amount < 0:
            self._fail(
                "counter-monotonicity",
                f"interrupt counter {kind!r} on cpu {cpu} recorded a negative "
                f"amount ({amount})",
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Packet-conservation hooks
    # ------------------------------------------------------------------
    def on_inject(self, skb, accepted: bool) -> None:
        if skb.segs != 1:
            self._fail(
                "conservation",
                f"freshly injected frame claims {skb.segs} merged segments "
                f"(flow {skb.flow.flow_id} msg {skb.msg_id})",
            )
        if accepted:
            self.generated += 1
        else:
            self.terminals["ring_drop"] += 1
        self.checks_passed += 1

    def on_terminal(self, skb, outcome: str) -> None:
        self.terminals[outcome] += skb.segs
        if self.live_packets() < 0:
            self._fail(
                "conservation",
                f"terminal outcome {outcome!r} for flow {skb.flow.flow_id} "
                f"msg {skb.msg_id} pushed accounted packets past the number "
                f"generated ({self.ledger()})",
            )
        self.checks_passed += 1

    def on_defrag_timeout(self, npackets: int) -> None:
        self.terminals["defrag_timeout"] += npackets
        self.checks_passed += 1

    def on_fastpath_delivery(self, cpu_index: int, segs: int) -> None:
        """``segs`` wire segments reached their socket via the cached
        fast path (reported just before the matching ``delivered``)."""
        if segs <= 0:
            self._fail(
                "conservation",
                f"fast-path delivery reported {segs} segments on core "
                f"{cpu_index}",
            )
        self.fastpath_delivered += segs
        self.fastpath_by_cpu[cpu_index] = (
            self.fastpath_by_cpu.get(cpu_index, 0) + segs
        )
        if self.fastpath_delivered > self.generated:
            self._fail(
                "conservation",
                f"fast-path deliveries ({self.fastpath_delivered}) exceed "
                f"packets generated ({self.generated})",
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Ledger
    # ------------------------------------------------------------------
    def live_packets(self) -> int:
        """Accepted packets with no terminal outcome yet."""
        return self.generated - sum(self.terminals.values()) + self.terminals["ring_drop"]

    def in_flight_observable(self) -> int:
        """Packets visible in queues (rings, backlogs, GRO, defrag)."""
        stack = self.stack
        total = sum(
            sum(skb.segs for skb in queue.ring) for queue in stack.nic.queues
        )
        for data in stack.softnet.data:
            for napi in data.queues.values():
                total += sum(skb.segs for skb, _stage in napi.queue)
        if stack.gro is not None:
            total += stack.gro.held_segs
        total += stack.defrag.pending_packets
        return total

    def ledger(self) -> Dict[str, int]:
        """The conservation ledger, for reports and failure messages."""
        entry = dict(self.terminals)
        entry["generated"] = self.generated
        entry["live"] = self.live_packets()
        entry["fastpath_delivered"] = self.fastpath_delivered
        if self.stack is not None:
            entry["queued_observable"] = self.in_flight_observable()
        return entry

    def pipeline_idle(self) -> bool:
        """True when no packet work is pending anywhere in the stack."""
        stack = self.stack
        if any(len(queue.ring) for queue in stack.nic.queues):
            return False
        for data in stack.softnet.data:
            if data.poll_list:
                return False
            if any(napi.queue for napi in data.queues.values()):
                return False
        if any(cpu.busy or cpu.queued() for cpu in stack.machine.cpus):
            return False
        if any(sock.rx_queue for sock in stack.sockets.sockets()):
            return False
        return True

    def check_conservation(self, strict: bool = True) -> None:
        """Assert the packet ledger balances.

        With ``strict`` (quiescence) every live packet must be visible in
        a queue; mid-run, live may exceed the observable queues by the
        packets captured in executing batches, but never the reverse.
        """
        live = self.live_packets()
        observable = self.in_flight_observable()
        if live < 0 or observable > live or (strict and live != observable):
            self._fail(
                "conservation",
                f"packet ledger does not balance: {live} packets alive vs "
                f"{observable} observable in queues — {self.ledger()}",
            )
        self.checks_passed += 1

    # ------------------------------------------------------------------
    # Periodic audit
    # ------------------------------------------------------------------
    def _audit(self) -> None:
        if not self.attached:
            return
        stack = self.stack
        machine = stack.machine
        current = machine.interrupts.snapshot()
        for kind, value in self._last_interrupts.items():
            if current.get(kind, 0) < value:
                self._fail(
                    "counter-monotonicity",
                    f"interrupt counter {kind!r} went backwards: "
                    f"{value} -> {current.get(kind, 0)}",
                )
        self._last_interrupts = current
        for index, cpu in enumerate(machine.cpus):
            if cpu.busy_us_total + _TIME_EPS < self._last_busy_us[index]:
                self._fail(
                    "cpu-accounting",
                    f"core {index} cumulative busy time went backwards: "
                    f"{self._last_busy_us[index]:.3f} -> {cpu.busy_us_total:.3f}",
                )
            self._last_busy_us[index] = cpu.busy_us_total
        for sock in stack.sockets.sockets():
            if sock.queue_depth > sock.rmem_packets:
                self._fail(
                    "queue-bound",
                    f"socket {sock.name!r} receive queue holds "
                    f"{sock.queue_depth} packets, above its rmem bound of "
                    f"{sock.rmem_packets}",
                )
        if stack.softnet.backlog_drops() < 0:
            self._fail("queue-bound", "negative backlog drop count")
        self.check_conservation(strict=False)
        self.audits += 1
        self._audit_event = stack.sim.schedule(self.audit_interval_us, self._audit)


def attach_monitor(stack, audit_interval_us: float = 500.0) -> InvariantMonitor:
    """Create an :class:`InvariantMonitor` and attach it to ``stack``."""
    return InvariantMonitor(audit_interval_us=audit_interval_us).attach(stack)


# ----------------------------------------------------------------------
# Deliberate-violation fixtures (used by tests and `repro validate
# --inject` to prove the monitors actually fire).
# ----------------------------------------------------------------------
def corrupt_interrupt_counter(machine, kind: str = NET_RX, amount: int = 1_000_000) -> None:
    """Silently decrement an interrupt counter, bypassing ``record()``.

    Models the class of bug the monitors exist for: state mutated outside
    the accounting discipline. The next periodic audit must flag the
    counter running backwards.
    """
    machine.interrupts._global.add(kind, -amount)


def corrupt_conservation_ledger(monitor: InvariantMonitor, amount: int = 1) -> None:
    """Erase accepted packets from the ledger, as a lost-packet bug would.

    The next strict conservation check (or any audit once the imbalance
    exceeds in-flight slack) must flag the ledger.
    """
    monitor.generated -= amount
