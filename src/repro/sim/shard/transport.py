"""Worker-process transport for the sharded engine.

This is deliberately the *only* module in the simulated scope that talks
to the operating system: it spawns one worker process per shard, wires a
duplex pipe to it, and speaks a tiny request/reply protocol whose
payloads are plain tuples of primitives (see
:mod:`repro.sim.shard.records`). Everything on the simulation side —
coordinator, records, shard programs — stays pure DES code; the lint
rules that ban concurrency primitives inside the simulated scope carve
out exactly this module. The simorder partition-invariance rules
(ORD501-503) carve it out too, by the same reasoning: pids, pipe fds
and poll timeouts are this module's *job*, and nothing here flows into
simulated timestamps, seeds or payloads — the wire tuples it ships are
constructed on the simulation side. Both carve-outs are declared on the
rules themselves (``Rule.exempt``), not as pragmas, so the exemption is
reviewed where the rule is defined and the baselines stay empty.

Protocol (coordinator → worker):

- ``("step", bound, inclusive, wire_records)`` → ``("ok", next_time,
  out_wire_records)``: inject the records, advance to the bound, report
  the new earliest pending time and whatever crossed out.
- ``("finalize",)`` → ``("ok", result_dict)``: collect results.
- ``("close",)``: exit the command loop (no reply).

Any protocol breach — the worker dying mid-window, not answering within
the timeout, replying garbage — surfaces as a
:class:`~repro.sim.errors.ShardError` naming the shard, never a hang:
every wait on the pipe is bounded by ``conn.poll(timeout)``.

Workers are *spawned* (not forked) so each starts from a clean
interpreter: shard programs are rebuilt inside the worker from a
``"module:function"`` builder reference plus primitive arguments, which
keeps the parent's state (RNG counters, flow-id counters, monkeypatches)
from leaking into any shard.

Fault injection
---------------
``ProcessShardHandle`` accepts a ``fault`` spec used by the test suite
to rehearse worker failure: ``("die", k)`` hard-exits the worker on its
k-th step, ``("malformed", k)`` makes it reply a corrupt record, and
``("hang", k)`` makes it sleep past any reasonable timeout. All three
must surface as ``ShardError``.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import time as _time
from multiprocessing.connection import Connection
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.errors import ShardError
from repro.sim.shard.coordinator import ShardProgram
from repro.sim.shard.records import CrossShardEvent

#: Default bound on any single wait for a worker reply. Windows are
#: microseconds of simulated time but can be milliseconds of real time;
#: this only needs to be comfortably above the slowest honest window.
DEFAULT_STEP_TIMEOUT_S = 30.0

FaultSpec = Tuple[str, int]


def resolve_builder(ref: str) -> Any:
    """Resolve a ``"module:function"`` reference to the callable."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ShardError(f"invalid shard builder reference {ref!r}")
    module = importlib.import_module(module_name)
    builder = getattr(module, attr, None)
    if builder is None or not callable(builder):
        raise ShardError(f"shard builder {ref!r} does not name a callable")
    return builder


def _shard_worker_main(
    conn: Connection,
    index: int,
    builder_ref: str,
    builder_args: Tuple[Any, ...],
    fault: Optional[FaultSpec],
) -> None:
    """Command loop run inside the spawned worker process."""
    try:
        builder = resolve_builder(builder_ref)
        program: ShardProgram = builder(*builder_args)
    except Exception as exc:  # surface build failures as a reply
        conn.send(("error", f"shard {index} failed to build: {exc!r}"))
        return
    conn.send(("ready",))
    steps = 0
    while True:
        request = conn.recv()
        command = request[0]
        if command == "close":
            return
        if command == "finalize":
            conn.send(("ok", program.finalize()))
            continue
        if command != "step":
            conn.send(("error", f"shard {index}: unknown command {command!r}"))
            continue
        _, bound, inclusive, wire_records = request
        steps += 1
        if fault is not None and steps >= fault[1]:
            mode = fault[0]
            if mode == "die":
                os._exit(1)
            if mode == "hang":
                _time.sleep(3600.0)
            if mode == "malformed":
                conn.send(("ok", None, [("not", "a", "record")]))
                continue
        try:
            records = [CrossShardEvent.from_wire(wire) for wire in wire_records]
            program.inject(records)
            produced = program.advance(bound, inclusive)
            reply_records = [record.to_wire() for record in produced]
            conn.send(("ok", program.next_time(), reply_records))
        except Exception as exc:
            conn.send(("error", f"shard {index} step failed: {exc!r}"))


class ProcessShardHandle:
    """One shard living in its own spawned worker process."""

    def __init__(
        self,
        index: int,
        hosts: Sequence[int],
        builder_ref: str,
        builder_args: Tuple[Any, ...],
        timeout_s: float = DEFAULT_STEP_TIMEOUT_S,
        fault: Optional[FaultSpec] = None,
    ) -> None:
        self.index = index
        self._hosts = tuple(hosts)
        self._timeout_s = timeout_s
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn: Connection = parent_conn
        self._proc = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, index, builder_ref, builder_args, fault),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        self._proc.start()
        child_conn.close()
        reply = self._recv("startup")
        if reply[0] != "ready":
            self._shutdown()
            raise ShardError(
                f"shard {index} worker failed to start: {reply[1:]!r}"
            )

    # ------------------------------------------------------------------
    def _recv(self, what: str) -> Tuple[Any, ...]:
        """Bounded receive; any breach becomes a ShardError, never a hang."""
        try:
            if not self._conn.poll(self._timeout_s):
                self._shutdown()
                raise ShardError(
                    f"shard {self.index} worker did not answer {what} "
                    f"within {self._timeout_s:.0f}s"
                )
            reply = self._conn.recv()
        except ShardError:
            raise
        except (EOFError, OSError) as exc:
            exitcode = self._proc.exitcode
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker died during {what} "
                f"(exitcode={exitcode}): {exc!r}"
            ) from exc
        if not isinstance(reply, tuple) or not reply:
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker sent a malformed reply to "
                f"{what}: {reply!r}"
            )
        if reply[0] == "error":
            self._shutdown()
            raise ShardError(str(reply[1]))
        return tuple(reply)

    def begin_step(
        self,
        bound: float,
        inclusive: bool,
        records: Sequence[CrossShardEvent],
    ) -> None:
        wire = [record.to_wire() for record in records]
        try:
            self._conn.send(("step", bound, inclusive, wire))
        except (BrokenPipeError, OSError) as exc:
            exitcode = self._proc.exitcode
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker is gone "
                f"(exitcode={exitcode}): {exc!r}"
            ) from exc

    def finish_step(self) -> Tuple[Optional[float], List[CrossShardEvent]]:
        reply = self._recv("a window step")
        if reply[0] != "ok" or len(reply) != 3:
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker sent a malformed step reply: "
                f"{reply!r}"
            )
        _, next_time, wire_records = reply
        if next_time is not None and not isinstance(next_time, (int, float)):
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker reported a non-numeric next "
                f"event time: {next_time!r}"
            )
        if not isinstance(wire_records, list):
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker sent a malformed record batch: "
                f"{wire_records!r}"
            )
        try:
            records = [CrossShardEvent.from_wire(wire) for wire in wire_records]
        except ShardError as exc:
            self._shutdown()
            raise ShardError(f"shard {self.index}: {exc}") from exc
        return (None if next_time is None else float(next_time), records)

    def hosts(self) -> Sequence[int]:
        return self._hosts

    def finalize(self) -> Dict[str, Any]:
        try:
            self._conn.send(("finalize",))
        except (BrokenPipeError, OSError) as exc:
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker is gone: {exc!r}"
            ) from exc
        reply = self._recv("finalize")
        if reply[0] != "ok" or len(reply) != 2 or not isinstance(reply[1], dict):
            self._shutdown()
            raise ShardError(
                f"shard {self.index} worker sent a malformed finalize "
                f"reply: {reply!r}"
            )
        result: Dict[str, Any] = reply[1]
        return result

    # ------------------------------------------------------------------
    def _shutdown(self) -> None:
        """Best-effort teardown; idempotent, never raises."""
        try:
            self._conn.close()
        except OSError:
            pass
        if self._proc.is_alive():
            self._proc.terminate()
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():  # pragma: no cover - last resort
            self._proc.kill()
            self._proc.join(timeout=5.0)

    def close(self) -> None:
        if not self._proc.is_alive():
            self._shutdown()
            return
        try:
            self._conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5.0)
        self._shutdown()
