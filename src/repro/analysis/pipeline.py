"""Closed-form pipeline analysis.

The receive path is a tandem of single-server queues (one per core).
For a single flow, each stage is pinned to one core, so:

* **capacity** is set by the slowest station:
  ``1 / max(per-core service time per message)``;
* **latency** under Poisson load is approximated per station by the
  M/M/1 waiting-time formula (an upper-ish bound for our near-
  deterministic service times — M/D/1 would halve the queueing term;
  both bound the simulator's behaviour).

Stage compositions mirror :mod:`repro.kernel.stack`:

* host:    pnic(driver) → hoststack → app-copy
* overlay: pnic → outer-stack(+vxlan_rcv) → vxlan/bridge/veth →
           container stack → app-copy

For the vanilla overlay the three post-RPS stages share one core; for
Falcon each runs on its own core (times a cross-core locality factor).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.kernel.costs import CostModel, fragment_sizes
from repro.kernel.skb import PROTO_TCP, PROTO_UDP


@dataclass(frozen=True)
class StageCost:
    """Service time of one pipeline station, per *message*."""

    name: str
    service_us: float

    def capacity_pps(self) -> float:
        return 1e6 / self.service_us if self.service_us > 0 else float("inf")


class PipelineModel:
    """Derives station service times from a cost model."""

    def __init__(
        self,
        costs: CostModel,
        message_size: int,
        proto: int = PROTO_UDP,
        overlay: bool = True,
        locality: float = 1.08,
        switch_cost_us: float = 0.0,
    ) -> None:
        self.costs = costs
        self.message_size = message_size
        self.proto = proto
        self.overlay = overlay
        self.locality = locality
        self.switch_cost_us = switch_cost_us
        self.fragments = fragment_sizes(
            message_size, overlay, tcp=proto == PROTO_TCP
        )

    # ------------------------------------------------------------------
    # Per-stage service times (per message)
    # ------------------------------------------------------------------
    def _wire_size(self, payload: int) -> int:
        overhead = 28 + (50 if self.overlay else 0)
        return payload + overhead

    def driver_stage(self) -> StageCost:
        costs = self.costs
        total = 0.0
        for payload in self.fragments:
            size = self._wire_size(payload)
            total += costs.skb_alloc.cost(size)
            if self.proto == PROTO_TCP:
                total += costs.napi_gro_receive.cost(size)
            else:
                total += costs.gro_check.cost(size)
            total += costs.rps_steer.fixed
        return StageCost("pnic", total)

    def _l4_cost(self, size: int) -> float:
        costs = self.costs
        if self.proto == PROTO_TCP:
            return costs.tcp_v4_rcv.cost(size) + costs.tcp_ack_tx.fixed
        return costs.udp_rcv.cost(size)

    def _tail_stage(self, name: str) -> StageCost:
        """ip → defrag → l4 → socket for the terminal stack."""
        costs = self.costs
        per_message = self._l4_cost(self.message_size) + costs.sock_enqueue.fixed
        per_fragment = 0.0
        # After GRO, TCP arrives merged: per-packet costs are per message.
        fragments = (
            [self.message_size] if self.proto == PROTO_TCP else self.fragments
        )
        for payload in fragments:
            per_fragment += costs.backlog_dequeue.fixed
            per_fragment += costs.ip_rcv.cost(self._wire_size(payload))
            if len(fragments) > 1:
                per_fragment += costs.ip_defrag.cost(payload)
        return StageCost(name, per_fragment + per_message)

    def outer_stage(self) -> StageCost:
        """Host-stack processing of the encapsulated packet (overlay)."""
        costs = self.costs
        total = 0.0
        fragments = (
            [self.message_size] if self.proto == PROTO_TCP else self.fragments
        )
        for payload in fragments:
            size = self._wire_size(payload)
            total += costs.backlog_dequeue.fixed
            total += costs.ip_rcv.cost(size)
            total += costs.udp_rcv_outer.fixed
            total += costs.vxlan_rcv.cost(size)
            total += costs.netif_rx.fixed
        return StageCost("hoststack_outer", total)

    def vxlan_stage(self) -> StageCost:
        costs = self.costs
        total = 0.0
        fragments = (
            [self.message_size] if self.proto == PROTO_TCP else self.fragments
        )
        for payload in fragments:
            total += costs.gro_cell_poll.fixed
            total += costs.br_handle_frame.cost(payload)
            total += costs.veth_xmit.cost(payload)
            total += costs.netif_rx.fixed
        return StageCost("vxlan", total)

    def app_stage(self) -> StageCost:
        per_read = self.costs.copy_to_user.cost(self.message_size)
        return StageCost("app_copy", per_read)

    # ------------------------------------------------------------------
    # Station layouts per mode
    # ------------------------------------------------------------------
    def stations(self, mode: str) -> List[StageCost]:
        """Per-core service times for ``host`` / ``overlay`` / ``falcon``."""
        loc = self.locality
        if mode == "host":
            return [
                self.driver_stage(),
                StageCost(
                    "hoststack", self._tail_stage("hoststack").service_us * loc
                ),
                StageCost("app_copy", self.app_stage().service_us),
            ]
        outer = self.outer_stage()
        vxlan = self.vxlan_stage()
        tail = self._tail_stage("container")
        if mode == "overlay":
            stacked = (
                outer.service_us + vxlan.service_us + tail.service_us
            ) * loc + 3 * self.switch_cost_us
            return [
                self.driver_stage(),
                StageCost("rps_core(stacked)", stacked),
                StageCost("app_copy", self.app_stage().service_us),
            ]
        if mode == "falcon":
            return [
                self.driver_stage(),
                StageCost("rps_core", outer.service_us * loc),
                StageCost("vxlan_core", vxlan.service_us * loc),
                StageCost("container_core", tail.service_us * loc),
                StageCost("app_copy", self.app_stage().service_us),
            ]
        raise ValueError(f"unknown mode {mode!r}")

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    def bottleneck(self, mode: str) -> StageCost:
        return max(self.stations(mode), key=lambda stage: stage.service_us)

    def capacity_pps(self, mode: str) -> float:
        return self.bottleneck(mode).capacity_pps()

    def latency_us(self, mode: str, rate_pps: float) -> float:
        """Mean sojourn time through the pipeline at a Poisson rate."""
        total = 0.0
        for stage in self.stations(mode):
            total += stage.service_us
            total += mm1_waiting_time_us(rate_pps, stage.service_us)
        return total


def mm1_waiting_time_us(rate_pps: float, service_us: float) -> float:
    """M/M/1 mean waiting time; infinite when the station saturates."""
    if service_us <= 0:
        return 0.0
    rho = rate_pps * service_us * 1e-6
    if rho >= 1.0:
        return float("inf")
    return service_us * rho / (1.0 - rho)


def predict_capacity_pps(
    mode: str,
    message_size: int,
    proto: int = PROTO_UDP,
    kernel: str = "4.19",
) -> float:
    """One-call capacity prediction for a standard configuration."""
    overlay = mode in ("overlay", "falcon")
    model = PipelineModel(
        CostModel.for_kernel(kernel),
        message_size,
        proto=proto,
        overlay=overlay,
    )
    return model.capacity_pps(mode)
