"""Point-to-point Ethernet link model.

A link serializes frames at its line rate and adds a small propagation
delay. The two testbed links in the paper — Intel X550T 10GbE and
Mellanox ConnectX-5 100GbE — differ only in bandwidth for the purposes of
the evaluation; the paper's Figure 2 shows the overlay penalty is masked
when the 10G link is the bottleneck and exposed at 100G.

On-wire overhead (Ethernet header + FCS + preamble + IFG = 38 bytes, plus
IP/UDP headers and, for overlay traffic, the 50-byte VXLAN encapsulation)
is accounted for by the caller via the frame size it passes in.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.engine import Simulator

#: Ethernet framing overhead per packet on the wire (preamble 8 + FCS 4 +
#: inter-frame gap 12 + MAC header 14 bytes).
ETHERNET_OVERHEAD_BYTES = 38


class Link:
    """Unidirectional serializing link.

    >>> from repro.sim import Simulator
    >>> sim = Simulator()
    >>> link = Link(sim, bandwidth_gbps=10.0, propagation_us=0.0)
    >>> out = []
    >>> link.send(1250, lambda: out.append(sim.now))   # 1250 B = 1 µs at 10G
    >>> link.send(1250, lambda: out.append(sim.now))
    >>> sim.run()
    >>> out
    [1.0, 2.0]
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_gbps: float,
        propagation_us: float = 1.0,
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if propagation_us < 0:
            raise ValueError("propagation delay must be >= 0")
        self.sim = sim
        self.bandwidth_gbps = bandwidth_gbps
        self.propagation_us = propagation_us
        self._next_free = 0.0
        self.frames_sent = 0
        self.bytes_sent = 0

    def serialization_us(self, nbytes: int) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes * 8.0 / (self.bandwidth_gbps * 1e3)

    def reserve(self, nbytes: int) -> float:
        """Book a frame onto the wire; return its arrival timestamp.

        Advances the sender-side serialization horizon and the traffic
        counters but schedules nothing — the caller owns delivery. The
        sharded engine uses this to compute an arrival time whose
        delivery happens on *another* shard's simulator: the arrival is
        always at least ``propagation_us`` in the future, which is
        exactly the lookahead the window barrier relies on.
        """
        start = max(self.sim.now, self._next_free)
        finish = start + self.serialization_us(nbytes)
        self._next_free = finish
        self.frames_sent += 1
        self.bytes_sent += nbytes
        return finish + self.propagation_us

    def send(self, nbytes: int, deliver: Callable[[], Any]) -> float:
        """Transmit a frame; call ``deliver`` when it fully arrives.

        Returns the arrival timestamp. Frames queue behind each other at
        the sender (FIFO), modelling the NIC's transmit serialization.
        """
        arrival = self.reserve(nbytes)
        self.sim.post_at(arrival, deliver)
        return arrival

    @property
    def backlog_us(self) -> float:
        """How far ahead of the clock the link is booked (send queue depth)."""
        return max(self._next_free - self.sim.now, 0.0)
