"""Unit tests for sk_buff model and the cost model."""

import pytest

from repro.kernel.costs import (
    MTU,
    VXLAN_OVERHEAD,
    CostModel,
    FuncCost,
    fragment_sizes,
    tcp_mss,
    udp_payload_per_fragment,
)
from repro.kernel.skb import PROTO_TCP, PROTO_UDP, FlowKey, Skb


class TestFlowKey:
    def test_same_tuple_same_hash(self):
        a = FlowKey.make(1, 2, PROTO_UDP, 1000, 5001)
        b = FlowKey.make(1, 2, PROTO_UDP, 1000, 5001)
        assert a.hash == b.hash

    def test_flow_ids_unique(self):
        assert FlowKey.make(1, 2).flow_id != FlowKey.make(1, 2).flow_id

    def test_tuple_roundtrip(self):
        flow = FlowKey(1, 2, PROTO_TCP, 3, 4)
        assert flow.tuple() == (1, 2, PROTO_TCP, 3, 4)


class TestSkb:
    def test_defaults(self):
        skb = Skb(FlowKey.make(1, 2), size=100)
        assert skb.wire_size == 100
        assert skb.msg_size == 100
        assert skb.segs == 1
        assert not skb.is_fragment
        assert skb.last_cpu is None

    def test_decapsulate_strips_overhead(self):
        skb = Skb(FlowKey.make(1, 2), size=1000, encapsulated=True)
        skb.decapsulate(VXLAN_OVERHEAD)
        assert skb.size == 950
        assert not skb.encapsulated

    def test_fragment_flags(self):
        skb = Skb(FlowKey.make(1, 2), size=100, frag_index=2, frag_count=3)
        assert skb.is_fragment
        assert skb.is_last_fragment

    def test_is_tcp(self):
        assert Skb(FlowKey.make(1, 2, PROTO_TCP), size=1).is_tcp
        assert not Skb(FlowKey.make(1, 2, PROTO_UDP), size=1).is_tcp


class TestFuncCost:
    def test_linear_cost(self):
        cost = FuncCost(1.0, 0.001)
        assert cost.cost(1000) == pytest.approx(2.0)


class TestCostModel:
    def test_kernel_presets_differ(self):
        k419 = CostModel.kernel_4_19()
        k54 = CostModel.kernel_5_4()
        assert k54.skb_alloc.fixed < k419.skb_alloc.fixed  # 5.4 improvement
        assert k54.backlog_dequeue.fixed > k419.backlog_dequeue.fixed  # regression
        assert k419.name == "4.19"
        assert k54.name == "5.4"

    def test_for_kernel_rejects_unknown(self):
        with pytest.raises(ValueError):
            CostModel.for_kernel("6.1")

    def test_tx_overlay_more_expensive(self):
        costs = CostModel()
        assert costs.tx_cost_us(100, overlay=True) > costs.tx_cost_us(
            100, overlay=False
        )


class TestFragmentation:
    def test_small_message_single_packet(self):
        assert fragment_sizes(16, overlay=False, tcp=False) == (16,)
        assert fragment_sizes(16, overlay=True, tcp=True) == (16,)

    def test_overlay_reduces_payload_per_fragment(self):
        assert udp_payload_per_fragment(True) == udp_payload_per_fragment(
            False
        ) - VXLAN_OVERHEAD
        assert tcp_mss(True) == tcp_mss(False) - VXLAN_OVERHEAD

    def test_fragments_cover_message(self):
        for overlay in (False, True):
            for tcp in (False, True):
                for size in (1, 1000, 1473, 4096, 65507):
                    sizes = fragment_sizes(size, overlay, tcp)
                    assert sum(sizes) == size
                    unit = tcp_mss(overlay) if tcp else udp_payload_per_fragment(overlay)
                    assert all(0 < s <= unit for s in sizes)

    def test_mtu_bound(self):
        # Every fragment plus headers plus encap must fit the wire MTU.
        for overlay in (False, True):
            unit = udp_payload_per_fragment(overlay)
            wire = unit + 28 + (VXLAN_OVERHEAD if overlay else 0)
            assert wire <= MTU

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            fragment_sizes(0, False, False)

    def test_64k_udp_fragment_count(self):
        host_frags = len(fragment_sizes(65507, overlay=False, tcp=False))
        overlay_frags = len(fragment_sizes(65507, overlay=True, tcp=False))
        assert host_frags == 45
        assert overlay_frags >= host_frags  # smaller inner MTU, more frags
