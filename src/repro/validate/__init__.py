"""Correctness tooling: invariant monitors, differential & golden testing.

Any run can opt in::

    from repro.validate import attach_monitor
    monitor = attach_monitor(stack)      # raises InvariantViolation on bugs

`repro validate` (see :mod:`repro.cli`) wires the three suites together;
:mod:`repro.validate.harness` is the programmatic entry point.
"""

from repro.validate.differential import (
    DIFFERENTIAL_SCENARIOS,
    DiffReport,
    DiffScenario,
    SideRecord,
    compare_sides,
    run_differential,
)
from repro.validate.golden import (
    GOLDEN_SCENARIOS,
    check_goldens,
    default_golden_dir,
    diff_trace_docs,
    load_golden,
    run_golden_scenario,
    serialize_traces,
    trace_doc_to_json,
    write_golden,
)
from repro.validate.harness import (
    SuiteOutcome,
    drain_to_quiescence,
    run_differential_suite,
    run_golden_suite,
    run_invariant_suite,
    run_validation,
    sanitize_outcome,
)
from repro.validate.sanitize import (
    SANITIZE_ENV_VAR,
    LeakRecord,
    OwnershipLedger,
    SanitizeReport,
    current_ledger,
    install_ledger,
    reset_ledger,
    sanitize_enabled,
    sanitizing,
)
from repro.validate.invariants import (
    TERMINAL_OUTCOMES,
    InvariantMonitor,
    InvariantViolation,
    attach_monitor,
    corrupt_conservation_ledger,
    corrupt_interrupt_counter,
)

__all__ = [
    "DIFFERENTIAL_SCENARIOS",
    "DiffReport",
    "DiffScenario",
    "GOLDEN_SCENARIOS",
    "InvariantMonitor",
    "InvariantViolation",
    "LeakRecord",
    "OwnershipLedger",
    "SANITIZE_ENV_VAR",
    "SanitizeReport",
    "SideRecord",
    "SuiteOutcome",
    "TERMINAL_OUTCOMES",
    "attach_monitor",
    "check_goldens",
    "compare_sides",
    "corrupt_conservation_ledger",
    "corrupt_interrupt_counter",
    "current_ledger",
    "default_golden_dir",
    "diff_trace_docs",
    "drain_to_quiescence",
    "install_ledger",
    "load_golden",
    "reset_ledger",
    "run_differential",
    "run_differential_suite",
    "run_golden_scenario",
    "run_golden_suite",
    "run_invariant_suite",
    "run_validation",
    "sanitize_enabled",
    "sanitize_outcome",
    "sanitizing",
    "serialize_traces",
    "trace_doc_to_json",
    "write_golden",
]
