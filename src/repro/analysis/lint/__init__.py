"""``simlint``: static enforcement of the simulator's core contracts.

The static counterpart of :mod:`repro.validate` (PR 1): where the
invariant monitors catch a determinism or serialization violation *when
a workload executes it*, these rules catch the same contract violations
on every file before any workload runs. Three rule families:

=========  =============================================================
SIM101     no wall-clock reads (``time.time`` & co.)
SIM102     all randomness via :class:`repro.sim.rng.RngRegistry` streams
SIM103     no ``id()``/``hash()``-derived ordering
SIM104     no set iteration feeding the event scheduler
DES201     no real concurrency primitives in simulated code
DES202     no blocking calls (sleep / I/O / subprocess) in simulated code
DES203     service times are named :class:`~repro.kernel.costs.CostModel`
           constants, never literals
RACE301    cross-core access to per-CPU structures must route through
           the serialization primitives (``raise_net_rx`` /
           ``enqueue_backlog`` / ``schedule`` / ``submit``)
LINT000/1  malformed pragmas / unparseable files (always on)
=========  =============================================================

Run via ``repro lint <paths>`` or programmatically via
:func:`lint_paths`. Suppression pragmas are documented in
:mod:`repro.analysis.pragmas`.
"""

from repro.analysis.lint.core import Finding, Rule
from repro.analysis.lint.report import LintResult, render_json, render_text
from repro.analysis.lint.runner import ALL_RULES, lint_paths, rule_by_id

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "Rule",
    "lint_paths",
    "render_json",
    "render_text",
    "rule_by_id",
]
