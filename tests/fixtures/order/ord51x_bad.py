"""ORD511-513: cross-shard causality violations.

A record timestamped below the window barrier + lookahead lands in the
receiving shard's *past*; reaching into another shard's program mutates
a world mid-window with no barrier at all; an ad-hoc CrossShardEvent
skips the per-source seq counter that keeps the merge key total.
"""


class LeakyOutbox:
    def __init__(self, sim, outbox):
        self.sim = sim
        self.outbox = outbox

    def publish_stale(self, src, flow_index):
        self.outbox.emit(self.sim.now, "inval", src, (flow_index,))  # expect: ORD511

    def publish_unproven(self, src, when):
        self.outbox.emit(when, "credit", src, ())  # expect: ORD511


def poke_other_shard(other, fn):
    other._program.sim.post_at(0.0, fn)  # expect: ORD512


def forge_record(time_us, src, seq, kind, dst, payload):
    return CrossShardEvent(time_us, src, seq, kind, dst, payload)  # expect: ORD513
