"""Figure 2 — motivation: overlay vs native on 10G and 100G links.

Four panels:

(a) single-flow throughput, 64 KB messages, UDP and TCP, 10G vs 100G —
    the overlay is near-native when the slow link is the bottleneck and
    loses heavily at 100G;
(b) single-flow UDP packet rate vs message size — the gap is largest for
    small packets and narrows with size;
(c) multi-flow packet rate at flow:core ratios 1:1 and 4:1 — imbalance
    from hash collisions amplifies the overlay penalty;
(d) single-flow round-trip-ish latency, UDP and TCP — the prolonged data
    path costs up to 2x (UDP) / 5x (TCP) in the paper.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multiflow_udp
from repro.workloads.sockperf import Experiment

_SIZES_B = (16, 256, 1024, 1400)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput(
        "Figure 2", "Overlay vs native host network (motivation)"
    )
    dur = durations(quick, 20.0, 8.0)
    cases = [("Host", dict(mode="host")), ("Con", dict(mode="overlay"))]

    # --- (a) 64 KB single-flow throughput --------------------------------
    table_a = Table(
        ["link", "proto", "Host Gbps", "Con Gbps", "Con/Host"],
        title="(a) single-flow throughput, 64 KB messages",
    )
    series_a = {}
    links = (10.0, 100.0) if not quick else (100.0,)
    for bandwidth in links:
        for proto in ("udp", "tcp"):
            values = {}
            for label, kwargs in cases:
                exp = Experiment(bandwidth_gbps=bandwidth, **kwargs)
                if proto == "udp":
                    result = exp.run_udp_plateau(
                        65507,
                        duration_ms=dur["duration_ms"],
                        warmup_ms=dur["warmup_ms"],
                        iterations=4 if quick else 8,
                    )
                else:
                    result = exp.run_tcp_stream(
                        65507, window_msgs=16, **dur
                    )
                values[label] = result.goodput_gbps
            ratio = values["Con"] / values["Host"] if values["Host"] else 0.0
            table_a.add_row(
                f"{bandwidth:.0f}G", proto, values["Host"], values["Con"], ratio
            )
            series_a[(bandwidth, proto)] = (values["Host"], values["Con"])
    out.tables.append(table_a)
    out.series["throughput_64k"] = series_a

    # --- (b) UDP packet rate vs message size ------------------------------
    table_b = Table(
        ["size B", "Host kpps", "Con kpps", "Con/Host"],
        title="(b) single-flow UDP packet rate vs message size (100G)",
    )
    series_b = {}
    sizes = _SIZES_B if not quick else (16, 1400)
    for size in sizes:
        values = {}
        for label, kwargs in cases:
            result = Experiment(**kwargs).run_udp_stress(size, **dur)
            values[label] = result.message_rate_pps
        table_b.add_row(
            size,
            values["Host"] / 1e3,
            values["Con"] / 1e3,
            values["Con"] / values["Host"] if values["Host"] else 0.0,
        )
        series_b[size] = (values["Host"], values["Con"])
    out.tables.append(table_b)
    out.series["pktrate_vs_size"] = series_b

    # --- (c) multi-flow packet rate at two flow:core ratios ---------------
    # Fixed per-flow rates sized so the host network always keeps up:
    # every packet-rate loss is then attributable to overlay flows being
    # individually more expensive, which turns steering collisions into
    # overloaded cores — and collisions multiply with the flow:core ratio.
    table_c = Table(
        ["flows:cores", "Host kpps", "Con kpps", "Con/Host"],
        title="(c) multi-flow UDP packet rate, 1 KB @ 150 kpps/flow (RPS on)",
    )
    series_c = {}
    ratios = ((4, 4), (16, 4)) if not quick else ((16, 4),)
    for flows, cores in ratios:
        values = {}
        for label, kwargs in cases:
            result = run_multiflow_udp(
                flows,
                message_size=1024,
                rate_per_flow=150_000.0,
                rps_cpus=list(range(1, cores + 1)),
                **kwargs,
                **dur,
            )
            values[label] = result.message_rate_pps
        table_c.add_row(
            f"{flows}:{cores}",
            values["Host"] / 1e3,
            values["Con"] / 1e3,
            values["Con"] / values["Host"] if values["Host"] else 0.0,
        )
        series_c[(flows, cores)] = (values["Host"], values["Con"])
    out.tables.append(table_c)
    out.series["multiflow"] = series_c

    # --- (d) latency -------------------------------------------------------
    table_d = Table(
        ["proto", "Host us", "Con us", "Con/Host"],
        title="(d) single-flow latency (moderate fixed rate, 100G)",
    )
    series_d = {}
    for proto in ("udp", "tcp"):
        values = {}
        for label, kwargs in cases:
            exp = Experiment(**kwargs)
            if proto == "udp":
                result = exp.run_udp_fixed(16, rate_pps=250_000, poisson=True, **dur)
            else:
                result = exp.run_tcp_fixed(4096, rate_pps=60_000, **dur)
            values[label] = result.avg_latency_us
        table_d.add_row(
            proto,
            values["Host"],
            values["Con"],
            values["Con"] / values["Host"] if values["Host"] else 0.0,
        )
        series_d[proto] = (values["Host"], values["Con"])
    out.tables.append(table_d)
    out.series["latency"] = series_d
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
