"""Windowed measurement orchestration.

Experiments run in two phases: a warm-up (queues fill, loads stabilize,
Falcon's load tracker converges) and a measurement window. A
:class:`MeasurementWindow` snapshots every counter at the window edges so
results contain steady-state behaviour only — the same discipline the
paper's fixed-rate experiments use.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.metrics.cpuacct import CpuWindow
from repro.sim.stats import LatencyRecorder, RateMeter


class MeasurementWindow:
    """Snapshot bracket around a measurement interval."""

    def __init__(self, machine, stack) -> None:
        self.machine = machine
        self.stack = stack
        self.rate = RateMeter()
        self.latency = LatencyRecorder()
        self.cpu: Optional[CpuWindow] = None
        self._interrupts_at_open: Dict[str, int] = {}
        self._drops_at_open: Dict[str, int] = {}
        self._softirq_raises_at_open = 0
        self._handler_runs_at_open = 0
        self._stage_execs_at_open: Dict[str, int] = {}
        self._delivered_at_open = 0
        self.opened = False
        self.closed = False

    # ------------------------------------------------------------------
    def open(self) -> None:
        now = self.machine.sim.now
        self.cpu = CpuWindow(self.machine.acct, start_time=now)
        self._interrupts_at_open = self.machine.interrupts.snapshot()
        self._drops_at_open = dict(self.stack.drop_counts())
        self._softirq_raises_at_open = self.stack.softnet.softirq_raises
        self._handler_runs_at_open = self.stack.softnet.handler_runs
        self._stage_execs_at_open = dict(self.stack.softnet.stage_executions)
        self._delivered_at_open = self.stack.delivered_packets
        self.rate.open_window(now)
        self.opened = True

    def close(self) -> None:
        now = self.machine.sim.now
        assert self.cpu is not None, "close() before open()"
        self.cpu.close(now)
        self.rate.close_window(now)
        self.closed = True

    # ------------------------------------------------------------------
    # Delivery hook — wire this as the socket's on_message callback (or
    # call it from one).
    # ------------------------------------------------------------------
    def on_message(self, socket, skb, latency_us: float) -> None:
        if not self.opened or self.closed:
            return
        self.rate.record(skb.msg_size)
        self.latency.record(latency_us)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def interrupt_deltas(self) -> Dict[str, int]:
        return self.machine.interrupts.diff(self._interrupts_at_open)

    def drop_deltas(self) -> Dict[str, int]:
        current = self.stack.drop_counts()
        return {
            key: current[key] - self._drops_at_open.get(key, 0) for key in current
        }

    def softirq_raise_delta(self) -> int:
        return self.stack.softnet.softirq_raises - self._softirq_raises_at_open

    def handler_run_delta(self) -> int:
        return self.stack.softnet.handler_runs - self._handler_runs_at_open

    def stage_execution_deltas(self) -> Dict[str, int]:
        current = self.stack.softnet.stage_executions
        return {
            name: current[name] - self._stage_execs_at_open.get(name, 0)
            for name in current
        }

    def delivered_delta(self) -> int:
        return self.stack.delivered_packets - self._delivered_at_open


class ThroughputProbe:
    """Finds a workload's saturation throughput by overload driving.

    The paper's stress methodology: "we kept increasing the sending rate
    until received packet rate plateaued and packet drop occurred". With
    bounded queues, driving well above capacity and measuring the
    steady-state delivered rate yields the same plateau in one run; this
    class exists to document and centralize that methodology.
    """

    def __init__(self, overdrive_factor: float = 3.0) -> None:
        if overdrive_factor < 1.0:
            raise ValueError("overdrive factor must be >= 1")
        self.overdrive_factor = overdrive_factor

    def offered_rate(self, estimated_capacity_pps: float) -> float:
        return estimated_capacity_pps * self.overdrive_factor
