"""Tests for the ``simsan`` ownership/lifetime pass.

Mirrors the simlint/simflow/simorder fixture discipline: every seeded
violation in ``tests/fixtures/san/`` carries a trailing ``# expect:
RULE`` marker and the tests demand exact (file, line, rule) agreement —
no extra findings, none missing. The clean twins (which deliberately
mirror the real engine/GRO/FlowTable idioms) and the whole in-tree
source must produce zero findings, which is the pass's false-positive
budget.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis.check import run_check
from repro.analysis.lint.report import render_text
from repro.analysis.san import (
    SAN_RULE_IDS,
    SAN_RULES,
    san_cross_check,
    san_paths,
    san_rule_by_id,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "san"

MARKER_RE = re.compile(r"#\s*expect:\s*([A-Z0-9, ]+)")


def expected_fixture_findings():
    """(file name, line, rule) tuples derived from ``# expect:`` markers."""
    expected = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, text in enumerate(
            path.read_text().splitlines(), start=1
        ):
            match = MARKER_RE.search(text)
            if match is None:
                continue
            for rule in match.group(1).replace(" ", "").split(","):
                if rule:
                    expected.add((path.name, lineno, rule))
    return expected


def actual_findings(paths, **kwargs):
    result = san_paths([str(p) for p in paths], **kwargs)
    return result, {
        (Path(f.path).name, f.line, f.rule) for f in result.findings
    }


class TestFixtureCorpus:
    def test_exact_findings(self):
        result, actual = actual_findings([FIXTURES])
        assert actual == expected_fixture_findings()
        assert not result.ok

    def test_every_san_rule_is_exercised(self):
        rules_seen = {rule for _, _, rule in expected_fixture_findings()}
        for rule_id in SAN_RULE_IDS:
            assert rule_id in rules_seen, f"no fixture exercises {rule_id}"

    def test_clean_twins_stay_clean(self):
        clean = sorted(FIXTURES.glob("*_clean.py"))
        assert clean, "corpus is missing its clean twins"
        result, actual = actual_findings(clean)
        assert result.ok, render_text(result)
        assert actual == set()

    def test_findings_are_deterministic(self):
        first, _ = actual_findings([FIXTURES])
        second, _ = actual_findings([FIXTURES])
        assert first.findings == second.findings


class TestSourceTreeIsClean:
    """Zero in-tree findings is the false-positive budget of the pass.

    This is also the PR's acceptance bar: the engine's freelist, the
    shard wire codec and the flowcache satisfy every OWN rule with an
    **empty** baseline — no pragmas, no suppressions (see
    test_findings_baseline.py).
    """

    def test_src_owns_clean(self):
        result, _ = actual_findings([REPO_ROOT / "src"])
        assert result.ok, render_text(result)
        assert not result.suppressed
        assert result.files_checked > 50


class TestRuleCatalogue:
    def test_registry_matches_rules(self):
        assert tuple(r.id for r in SAN_RULES) == SAN_RULE_IDS

    def test_rule_by_id(self):
        for rule in SAN_RULES:
            assert san_rule_by_id(rule.id) is rule
            assert rule.title and rule.rationale
        assert san_rule_by_id("BOGUS99") is None

    def test_single_rule_runs_alone(self):
        result, actual = actual_findings([FIXTURES], rule_ids=["OWN601"])
        rules = {rule for _, _, rule in actual}
        assert rules <= {"OWN601", "LINT000", "LINT001"}
        assert ("own60x_bad.py", 14, "OWN601") in actual
        assert not any(rule == "OWN603" for _, _, rule in actual)

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="BOGUS99"):
            san_paths([str(FIXTURES)], rule_ids=["BOGUS99"])


class TestOwnershipSemantics:
    """The path-sensitivity the corpus README calls out, plus the
    must-discipline: one-path releases never flag, one-path leaks do."""

    def test_branch_release_is_not_double(self, tmp_path):
        copy = tmp_path / "branch_release.py"
        copy.write_text(
            "def reap(self, flag):\n"
            "    ev = self._freelist.pop()\n"
            "    if flag:\n"
            "        self._recycle(ev)\n"
            "    else:\n"
            "        self._recycle(ev)\n"
        )
        result, _ = actual_findings([copy])
        assert result.ok, render_text(result)

    def test_release_after_either_arm_is_double(self, tmp_path):
        copy = tmp_path / "joined_double.py"
        copy.write_text(
            "def reap(self, flag):\n"
            "    ev = self._freelist.pop()\n"
            "    if flag:\n"
            "        self._recycle(ev)\n"
            "    else:\n"
            "        self._recycle(ev)\n"
            "    self._recycle(ev)\n"
        )
        _, actual = actual_findings([copy])
        assert ("joined_double.py", 7, "OWN601") in actual

    def test_leak_is_existential(self, tmp_path):
        # Queued on one path only: the other path leaks, and that is
        # enough — the leak rule does not wait for all paths to drop it.
        copy = tmp_path / "one_path_leak.py"
        copy.write_text(
            "def post_if(self, armed):\n"
            "    ev = self._freelist.pop()\n"
            "    if armed:\n"
            "        self._scheduler.push(ev)\n"
        )
        _, actual = actual_findings([copy])
        assert ("one_path_leak.py", 2, "OWN603") in actual

    def test_store_xor_forward_stays_silent(self, tmp_path):
        # GRO's shape: held on one path, returned on the disjoint other.
        copy = tmp_path / "gro_shape.py"
        copy.write_text(
            "def feed(self, skb):\n"
            "    if self._mergeable(skb):\n"
            "        self.held.append(skb)\n"
            "        return None\n"
            "    return skb\n"
        )
        result, _ = actual_findings([copy])
        assert result.ok, render_text(result)

    def test_store_and_forward_is_flagged(self, tmp_path):
        copy = tmp_path / "retained.py"
        copy.write_text(
            "def feed(self, skb):\n"
            "    self.held.append(skb)\n"
            "    return skb\n"
        )
        _, actual = actual_findings([copy])
        assert ("retained.py", 3, "OWN612") in actual


class TestPragmaSuppression:
    """Ownership findings honour the shared simlint pragma machinery."""

    def test_disable_pragma_suppresses_san_finding(self, tmp_path):
        src = (FIXTURES / "own60x_bad.py").read_text()
        patched = src.replace(
            "self._recycle(ev)  # expect: OWN601",
            "self._recycle(ev)  # simlint: disable=OWN601",
        )
        assert patched != src
        copy = tmp_path / "suppressed.py"
        copy.write_text(patched)
        result, actual = actual_findings([copy])
        assert ("suppressed.py", 14, "OWN601") not in actual
        assert [f.rule for f in result.suppressed] == ["OWN601"]
        assert result.suppressed[0].line == 14

    def test_san_ids_are_known_to_lint_meta_rules(self, tmp_path):
        from repro.analysis.lint import lint_paths

        copy = tmp_path / "cross.py"
        copy.write_text("x = 1  # simlint: disable=OWN611\n")
        result = lint_paths([str(copy)])
        assert result.ok, render_text(result)


class TestStaticDynamicCrossCheck:
    """Every site tag the runtime ledger reports must be in the static
    catalog — a tag the scan cannot find means an instrumentation call
    built its site string at runtime."""

    def test_probe_exercises_known_sites_only(self):
        check = san_cross_check()
        assert check.ok, "\n".join(check.render())
        assert len(check.static_sites) >= 15
        # The probe covers every kind; compaction and refill discards
        # are the easy ones to lose, so pin a few by name.
        for site in (
            "engine.post",
            "engine.fired",
            "heap.compact",
            "calendar.refill",
            "flowtable.evict",
            "world.inject",
        ):
            assert site in check.dynamic_sites, site

    def test_unknown_dynamic_site_fails(self):
        check = san_cross_check(dynamic_sites=["engine.post", "bogus.site"])
        assert not check.ok
        assert check.unknown == ["bogus.site"]
        assert any("bogus.site" in line for line in check.render())

    def test_unexercised_is_informational(self):
        check = san_cross_check(dynamic_sites=["engine.post"])
        assert check.ok
        assert "heap.discard" in check.unexercised


class TestUnifiedCheck:
    """`repro check` runs the san gate alongside the other passes."""

    def test_fixture_run_fails_san_only(self):
        report = run_check([str(FIXTURES)])
        assert not report.ok
        by_name = {step.name: step for step in report.steps}
        assert set(by_name) == {"lint", "flow", "order", "san", "mypy"}
        assert not by_name["san"].ok
        assert by_name["lint"].ok
        assert by_name["flow"].ok
        assert by_name["order"].ok

    def test_rule_filter_routes_to_owning_analyzer(self):
        report = run_check([str(FIXTURES)], rule_ids=["OWN621"])
        by_name = {step.name: step for step in report.steps}
        assert not by_name["san"].ok
        assert by_name["lint"].ok and by_name["flow"].ok and by_name["order"].ok


class TestCli:
    def test_san_src_exits_zero(self, capsys):
        assert main(["san", str(REPO_ROOT / "src")]) == 0
        assert "clean" in capsys.readouterr().out

    def test_san_fixtures_exits_one_with_json(self, capsys):
        code = main(["san", str(FIXTURES), "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts_by_rule"]["OWN603"] == 3
        assert payload["counts_by_rule"]["OWN611"] == 4

    def test_unknown_rule_exits_two(self, capsys):
        code = main(["san", str(FIXTURES), "--rule", "BOGUS99"])
        assert code == 2
        assert "BOGUS99" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["san", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in SAN_RULE_IDS:
            assert rule_id in out

    def test_trace_exits_zero(self, capsys):
        assert main(["san", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "static sites" in out

    def test_check_src_includes_san_step(self, capsys):
        assert main(["check", str(REPO_ROOT / "src"), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "san" in [step["name"] for step in payload["steps"]]
