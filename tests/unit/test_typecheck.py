"""Tests for the mypy strict gate's ratchet and wrapper.

The ratchet (modules whose strict errors are still ignored) lives in
pyproject.toml and is mirrored in ``tools/mypy_ratchet.txt`` so that
shrinking it is a visible, reviewed act. These tests pin the mirror and
the wrapper's behaviour; the actual mypy run happens in CI (this
container does not ship mypy).
"""

import subprocess
import sys
import tomllib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
PYPROJECT = REPO_ROOT / "pyproject.toml"
RATCHET = REPO_ROOT / "tools" / "mypy_ratchet.txt"
TYPECHECK = REPO_ROOT / "tools" / "typecheck.py"


def pyproject_ignored_modules():
    config = tomllib.loads(PYPROJECT.read_text())
    modules = set()
    for override in config["tool"]["mypy"]["overrides"]:
        if override.get("ignore_errors"):
            listed = override["module"]
            modules.update([listed] if isinstance(listed, str) else listed)
    return modules


def ratchet_file_modules():
    return {
        line.strip()
        for line in RATCHET.read_text().splitlines()
        if line.strip() and not line.startswith("#")
    }


class TestRatchetMirror:
    def test_pyproject_and_ratchet_file_agree(self):
        assert pyproject_ignored_modules() == ratchet_file_modules()

    def test_strict_core_is_not_ratcheted(self):
        """The packages the gate exists for must never re-enter the ratchet."""
        ratcheted = pyproject_ignored_modules()
        for module in ("repro.sim.*", "repro.analysis.*", "repro.kernel.costs"):
            assert module not in ratcheted
        assert not any(m.startswith("repro.sim") for m in ratcheted)
        assert not any(m.startswith("repro.analysis") for m in ratcheted)

    def test_mypy_config_is_strict(self):
        config = tomllib.loads(PYPROJECT.read_text())
        mypy = config["tool"]["mypy"]
        assert mypy["strict"] is True
        assert mypy["mypy_path"] == "src"


class TestTypecheckWrapper:
    def run_wrapper(self, *args):
        return subprocess.run(
            [sys.executable, str(TYPECHECK), *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_targets_exist(self):
        import importlib.util

        spec = importlib.util.spec_from_file_location("typecheck", TYPECHECK)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        for target in module.TARGETS:
            assert (REPO_ROOT / target).is_dir(), target

    def test_missing_mypy_is_soft_skip_locally(self):
        import importlib.util

        if importlib.util.find_spec("mypy") is not None:
            # mypy present (e.g. CI): the gate must actually pass.
            result = self.run_wrapper("--require")
            assert result.returncode == 0, result.stdout + result.stderr
            return
        result = self.run_wrapper()
        assert result.returncode == 0
        assert "skipping" in result.stdout

        required = self.run_wrapper("--require")
        assert required.returncode == 1
        assert "required" in required.stderr
