"""Packet steering: RSS and RPS (Section 2.1).

Both techniques hash the flow key and map the hash to a CPU, so *all*
packets of one flow go to one core — which is exactly why they cannot
parallelize a single flow (Section 3.3). RSS picks the NIC hardware queue
(and hence the hardirq core); RPS picks the core whose backlog receives
the packet after the driver stage.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.kernel.skb import Skb


class Rps:
    """Receive Packet Steering over a configured CPU set.

    >>> rps = Rps([1, 2, 3])
    >>> class _S:  # minimal skb stand-in
    ...     hash = 12345
    >>> rps.get_rps_cpu(_S(), current_cpu=0) in (1, 2, 3)
    True
    """

    def __init__(self, rps_cpus: Sequence[int]) -> None:
        if not rps_cpus:
            raise ValueError("RPS needs a non-empty CPU set")
        self.rps_cpus: List[int] = list(rps_cpus)

    def get_rps_cpu(self, skb: Skb, current_cpu: int) -> int:
        """Map a packet to its steering target by flow hash."""
        return self.rps_cpus[skb.hash % len(self.rps_cpus)]


class NoSteering:
    """Disabled RPS: processing continues on the current core."""

    def get_rps_cpu(self, skb: Skb, current_cpu: int) -> int:
        return current_cpu


class Rfs:
    """Receive Flow Steering: steer to the core the consuming app runs on.

    RFS extends RPS with a flow table recording where each flow's socket
    was last read, trading steering balance for application cache
    locality. The table is populated by the socket layer (``recvmsg``
    records the caller's CPU); flows without an entry fall back to plain
    RPS hashing.

    Included as a substrate feature and ablation axis: RFS concentrates a
    flow's *entire* softirq pipeline next to the app — the opposite of
    Falcon's pipelining — and the ablation quantifies that trade.
    """

    def __init__(self, rps_cpus: Sequence[int]) -> None:
        self._fallback = Rps(rps_cpus)
        #: flow id -> CPU the application last read that flow's socket on.
        self._flow_table: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    def record_consumer(self, flow_id: int, cpu: int) -> None:
        """The socket layer saw the app read this flow on ``cpu``."""
        self._flow_table[flow_id] = cpu

    def get_rps_cpu(self, skb: Skb, current_cpu: int) -> int:
        target = self._flow_table.get(skb.flow.flow_id)
        if target is None:
            self.misses += 1
            return self._fallback.get_rps_cpu(skb, current_cpu)
        self.hits += 1
        return target
