"""Figure 15 — sensitivity to FALCON_LOAD_THRESHOLD.

The multi-container busy-system workload at moderate and high load,
sweeping the utilization threshold that gates Falcon. Always-on hurts
when the system is loaded (parallelization steals cycles the flows need)
while a low threshold forgoes parallelization headroom; the paper finds
80–90% best.
"""

from __future__ import annotations

from repro.core.config import FalconConfig
from repro.experiments.runner import ExperimentOutput, durations
from repro.metrics.report import Table
from repro.workloads.multiflow import run_multicontainer

RECEIVING = [1, 2, 3, 4, 5, 6]
FULL_THRESHOLDS = (0.5, 0.7, 0.8, 0.9, None)  # None = always on
QUICK_THRESHOLDS = (0.7, 0.9, None)


def run(quick: bool = False) -> ExperimentOutput:
    out = ExperimentOutput("Figure 15", "Load-threshold sensitivity")
    dur = durations(quick, 15.0, 8.0)
    thresholds = QUICK_THRESHOLDS if quick else FULL_THRESHOLDS
    loads = ((10, "moderate"), (24, "high")) if not quick else ((10, "moderate"),)

    for containers, load_label in loads:
        table = Table(
            ["threshold", "kpps", "vs vanilla %"],
            title=f"{containers} containers ({load_label} load), UDP 1 KB",
        )
        vanilla = run_multicontainer(
            containers,
            message_size=1024,
            proto="udp",
            falcon=None,
            receiving_cpus=list(RECEIVING),
            rate_per_flow=220_000.0,
            **dur,
        ).message_rate_pps
        series = {"vanilla": vanilla}
        for threshold in thresholds:
            if threshold is None:
                falcon = FalconConfig(
                    cpus=list(RECEIVING), threshold_enabled=False
                )
                label = "always-on"
            else:
                falcon = FalconConfig(
                    cpus=list(RECEIVING), load_threshold=threshold
                )
                label = f"{threshold:.0%}"
            result = run_multicontainer(
                containers,
                message_size=1024,
                proto="udp",
                falcon=falcon,
                receiving_cpus=list(RECEIVING),
                rate_per_flow=220_000.0,
                **dur,
            )
            gain = (result.message_rate_pps / vanilla - 1.0) * 100 if vanilla else 0.0
            table.add_row(label, result.message_rate_pps / 1e3, gain)
            series[label] = result.message_rate_pps
        out.tables.append(table)
        out.series[load_label] = series
    return out


if __name__ == "__main__":  # pragma: no cover
    run().print()
