"""simorder: static causality & ordering verifier for the parallel datapaths.

A third analyzer on the simflow CFG/worklist engine, guarding the two
invariants the paper's correctness argument rests on — 1-vs-N-shard
byte-identity and per-flow delivery order through the cached fast path:

* partition-invariance taint: shard/worker identity must not reach
  timestamps, payloads, seeds or merge keys (:mod:`rules_partition`,
  ORD501-503);
* cross-shard causality: every cross-SimContext emission goes through a
  ``CrossShardEvent`` with a timestamp provably past the window barrier
  plus lookahead (:mod:`rules_causality`, ORD511-513);
* flowcache ordering typestate: the slow-inflight ledger gate and
  container-removal invalidation (:mod:`rules_flowcache`, ORD521-523);
* static↔dynamic ordering cross-check over the golden traces
  (:mod:`ordercheck`).

Run it as ``repro order`` (or as part of ``repro check``); it shares
reporters, pragmas, and the rule-id namespace with ``repro lint`` and
``repro flow``.

Exports resolve lazily (PEP 562): :mod:`repro.analysis.lint.runner`
imports :mod:`repro.analysis.order.registry` for the shared rule-id
namespace, and an eager import of :mod:`order.runner` here would close
that loop into a circular import.
"""

from typing import TYPE_CHECKING

from repro.analysis.order.registry import ORDER_RULE_IDS

if TYPE_CHECKING:  # pragma: no cover - static-analysis only
    from repro.analysis.order.ordercheck import (
        OrderCheckResult,
        order_cross_check,
    )
    from repro.analysis.order.runner import (
        ORDER_RULES,
        order_paths,
        order_rule_by_id,
    )

_LAZY = {
    "OrderCheckResult": ("repro.analysis.order.ordercheck", "OrderCheckResult"),
    "order_cross_check": (
        "repro.analysis.order.ordercheck",
        "order_cross_check",
    ),
    "ORDER_RULES": ("repro.analysis.order.runner", "ORDER_RULES"),
    "order_paths": ("repro.analysis.order.runner", "order_paths"),
    "order_rule_by_id": ("repro.analysis.order.runner", "order_rule_by_id"),
}

__all__ = ["ORDER_RULE_IDS", *sorted(_LAZY)]


def __getattr__(name: str) -> object:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
