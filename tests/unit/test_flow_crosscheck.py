"""Tests for the static↔dynamic stage-edge cross-check (``repro flow --trace``)."""

import json
from pathlib import Path

from repro.analysis.flow.crosscheck import (
    _single_packet,
    _trace_edges,
    cross_check,
    default_trace_dir,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_trace_file(tmp_path, events_lists, name="synthetic.json"):
    doc = {
        "traces": [
            {"flow_id": i, "msg_id": 0, "events": events}
            for i, events in enumerate(events_lists)
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return path


class TestHelpers:
    def test_single_packet_accepts_unique_stage_visits(self):
        events = [
            [1.0, "enqueue", "pnic", 0],
            [2.0, "exec", "pnic", 0],
            [3.0, "deliver", "socket", 0],
        ]
        assert _single_packet(events)

    def test_single_packet_rejects_repeated_pairs(self):
        events = [
            [1.0, "exec", "pnic", 0],
            [2.0, "exec", "pnic", 1],  # second packet's pnic pass
        ]
        assert not _single_packet(events)

    def test_trace_edges_from_exec_chain(self):
        events = [
            [1.0, "exec", "pnic", 0],
            [2.0, "exec", "hoststack_outer", 1],
            [3.0, "deliver", "socket", 1],
        ]
        assert _trace_edges(events) == {
            ("pnic", "hoststack_outer"),
            ("hoststack_outer", "socket"),
        }

    def test_enqueue_witnesses_edge_without_moving(self):
        # enqueue names the *target* before the hop executes; the edge is
        # witnessed once, not duplicated when exec follows.
        events = [
            [1.0, "exec", "pnic", 0],
            [2.0, "enqueue", "hoststack_outer", 0],
            [3.0, "exec", "hoststack_outer", 2],
        ]
        assert _trace_edges(events) == {("pnic", "hoststack_outer")}

    def test_events_are_time_sorted_before_replay(self):
        events = [
            [3.0, "deliver", "socket", 1],
            [1.0, "exec", "pnic", 0],
            [2.0, "exec", "hoststack", 0],
        ]
        assert _trace_edges(events) == {
            ("pnic", "hoststack"),
            ("hoststack", "socket"),
        }


class TestCrossCheck:
    def test_golden_traces_match_static_graph(self):
        result = cross_check()
        assert result.ok, result.to_text()
        assert result.traces_replayed > 0
        assert result.missing_static == []
        # Every observed edge is a real static edge.
        assert result.observed

    def test_default_trace_dir_exists(self):
        golden_dir = Path(default_trace_dir())
        assert golden_dir.is_dir()
        assert list(golden_dir.glob("*.json"))

    def test_bogus_runtime_edge_is_an_error(self, tmp_path):
        # A trace claiming the packet went socket -> pnic (backwards)
        # must be reported as missing from the static graph.
        path = make_trace_file(
            tmp_path,
            [[
                [1.0, "deliver", "socket", 0],
                [2.0, "exec", "pnic", 0],
            ]],
        )
        result = cross_check([str(path)])
        assert not result.ok
        assert ("socket", "pnic") in result.missing_static
        assert "ERROR" in result.to_text()
        payload = json.loads(result.to_json())
        assert payload["ok"] is False
        assert "socket->pnic" in payload["missing_from_static_graph"]

    def test_multi_packet_traces_are_skipped(self, tmp_path):
        path = make_trace_file(
            tmp_path,
            [[
                [1.0, "exec", "pnic", 0],
                [2.0, "exec", "pnic", 1],
                [3.0, "exec", "socket", 0],  # would be a bogus edge
            ]],
        )
        result = cross_check([str(path)])
        assert result.traces_skipped == 1
        assert result.traces_replayed == 0
        assert result.ok

    def test_unobserved_static_edges_are_warnings_not_errors(self, tmp_path):
        path = make_trace_file(
            tmp_path,
            [[
                [1.0, "exec", "pnic", 0],
                [2.0, "exec", "hoststack_outer", 1],
            ]],
        )
        result = cross_check([str(path)])
        assert result.ok
        assert result.unobserved_static  # most static edges unexercised
        assert "warning" in result.to_text()


class TestCli:
    def test_trace_default_goldens_exit_zero(self, capsys):
        assert main(["flow", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "cross-check OK" in out

    def test_trace_bad_file_exits_one(self, tmp_path, capsys):
        path = make_trace_file(
            tmp_path,
            [[
                [1.0, "deliver", "socket", 0],
                [2.0, "exec", "pnic", 0],
            ]],
        )
        assert main(["flow", "--trace", str(path)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_trace_json_format(self, capsys):
        assert main(["flow", "--trace", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["traces_replayed"] > 0
