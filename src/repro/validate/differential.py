"""Differential testing: the steering/datapath regimes must agree on
semantics.

Falcon changes *where* packets are processed; the flow cache changes
*which stages* they traverse. Neither may change *what* happens to them.
This module runs the same workload twice — one regime per side, by
default vanilla RPS vs Falcon, but any pair from ``REGIMES`` (vanilla,
falcon, oncache, oncache_falcon) — and asserts the properties every
regime is required to preserve:

* **message conservation** — every message the clients sent is delivered
  exactly once on both sides (the workloads are deliberately underloaded
  and fully drained, so drops would be a bug, not congestion);
* **per-flow delivery order** — each flow's messages complete in send
  order on both sides (Falcon keeps flows core-sticky per stage, so it
  must not introduce reordering);
* **identical application-level byte counts** — the two sides deliver
  the same messages with the same sizes, byte for byte.

Workloads use constant-rate or closed-loop pacing only: Poisson arrival
streams are named after the process-global flow counter and would differ
between the two testbeds (see docs/architecture.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: One recorded delivery: (msg_id, msg_size) in completion order.
Delivery = Tuple[int, int]


#: Regime label -> (enable falcon, enable flow cache).
REGIMES: Dict[str, Tuple[bool, bool]] = {
    "vanilla": (False, False),
    "falcon": (True, False),
    "oncache": (False, True),
    "oncache_falcon": (True, True),
}


@dataclass
class SideRecord:
    """Everything one side (one regime) of a differential run saw."""

    label: str
    #: flow index (creation order) -> deliveries in completion order.
    deliveries: Dict[int, List[Delivery]] = field(default_factory=dict)
    #: flow index -> messages the senders pushed onto the wire.
    sent: Dict[int, int] = field(default_factory=dict)
    drops: Dict[str, int] = field(default_factory=dict)
    reordered: int = 0

    @property
    def delivered_messages(self) -> int:
        return sum(len(entries) for entries in self.deliveries.values())

    @property
    def delivered_bytes(self) -> int:
        return sum(size for entries in self.deliveries.values() for _m, size in entries)


@dataclass
class DiffScenario:
    """One workload to run on both sides of the differential."""

    name: str
    proto: str = "udp"  # "udp" | "tcp"
    message_size: int = 512
    #: Per-flow constant offered rate (UDP); must stay under capacity.
    rate_pps: float = 40_000.0
    flows: int = 2
    window_msgs: int = 16
    duration_ms: float = 8.0
    warmup_ms: float = 2.0
    #: Extra simulated time for in-flight tail messages to complete.
    drain_ms: float = 8.0
    seed: int = 0
    #: The two regimes to compare (labels from :data:`REGIMES`).
    regimes: Tuple[str, str] = ("vanilla", "falcon")


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    scenario: DiffScenario
    baseline: SideRecord
    candidate: SideRecord
    failures: List[str]

    @property
    def ok(self) -> bool:
        return not self.failures


def _run_side(scenario: DiffScenario, regime: str) -> SideRecord:
    from repro.core.config import FalconConfig, FlowCacheConfig
    from repro.workloads.sockperf import Testbed

    use_falcon, use_cache = REGIMES[regime]
    falcon = FalconConfig() if use_falcon else None
    flowcache = FlowCacheConfig() if use_cache else None
    label = regime
    bed = Testbed(
        mode="overlay", falcon=falcon, flowcache=flowcache, seed=scenario.seed
    )
    record = SideRecord(label=label)
    flow_keys = []
    for index in range(scenario.flows):
        record.deliveries[index] = []

        def on_message(_socket, skb, _latency_us, index=index):
            record.deliveries[index].append((skb.msg_id, skb.msg_size))

        if scenario.proto == "udp":
            flow = bed.add_udp_flow(
                scenario.message_size,
                rate_pps=scenario.rate_pps,
                on_message=on_message,
            )
        else:
            # Paced, not closed-loop: a saturating window would let the
            # faster side send more messages and the byte counts would
            # differ for throughput reasons, not correctness ones.
            flow = bed.add_tcp_flow(
                scenario.message_size,
                window_msgs=scenario.window_msgs,
                rate_pps=scenario.rate_pps,
                on_message=on_message,
            )
        flow_keys.append(flow)
    bed.run(warmup_ms=scenario.warmup_ms, measure_ms=scenario.duration_ms)
    # Drain: senders have stopped; let in-flight tail messages complete so
    # conservation is exact rather than modulo the cutoff.
    end = bed.sim.now + scenario.drain_ms * 1000.0
    bed.sim.run(until=end)
    for index, flow in enumerate(flow_keys):
        record.sent[index] = sum(
            sender.messages_sent
            for sender in bed.senders
            if sender.flow.flow_id == flow.flow_id
        )
    record.drops = {k: v for k, v in bed.stack.drop_counts().items() if v}
    record.reordered = sum(
        sock.reordered_messages for sock in bed.stack.sockets.sockets()
    )
    return record


def compare_sides(baseline: SideRecord, candidate: SideRecord) -> List[str]:
    """The regime-invariant properties, as readable failure messages."""
    failures: List[str] = []
    for side in (baseline, candidate):
        if side.drops:
            failures.append(
                f"{side.label}: dropped packets in an underloaded run: {side.drops}"
            )
        if side.reordered:
            failures.append(
                f"{side.label}: {side.reordered} messages delivered out of order"
            )
        for flow_index in sorted(side.deliveries):
            delivered = side.deliveries[flow_index]
            sent = side.sent.get(flow_index, 0)
            if len(delivered) != sent:
                failures.append(
                    f"{side.label}: message conservation broken on flow "
                    f"{flow_index}: sent {sent} messages but delivered "
                    f"{len(delivered)}"
                )
            ids = [msg_id for msg_id, _size in delivered]
            for position in range(1, len(ids)):
                if ids[position] < ids[position - 1]:
                    failures.append(
                        f"{side.label}: flow {flow_index} delivery order broken "
                        f"at position {position}: msg {ids[position]} completed "
                        f"after msg {ids[position - 1]}"
                    )
                    break
    if set(baseline.deliveries) != set(candidate.deliveries):
        failures.append(
            f"flow sets differ: {baseline.label} {sorted(baseline.deliveries)} vs "
            f"{candidate.label} {sorted(candidate.deliveries)}"
        )
    for flow_index in sorted(set(baseline.deliveries) & set(candidate.deliveries)):
        want = baseline.deliveries[flow_index]
        got = candidate.deliveries[flow_index]
        if want == got:
            continue
        if len(want) != len(got):
            failures.append(
                f"flow {flow_index}: {baseline.label} delivered {len(want)} "
                f"messages, {candidate.label} {len(got)}"
            )
        for position, (w, g) in enumerate(zip(want, got)):
            if w != g:
                failures.append(
                    f"flow {flow_index} position {position}: {baseline.label} "
                    f"delivered msg {w[0]} ({w[1]} B), {candidate.label} "
                    f"msg {g[0]} ({g[1]} B)"
                )
                break
    if baseline.delivered_bytes != candidate.delivered_bytes:
        failures.append(
            f"application byte counts differ: {baseline.label} "
            f"{baseline.delivered_bytes} vs {candidate.label} "
            f"{candidate.delivered_bytes}"
        )
    return failures


def run_differential(scenario: DiffScenario) -> DiffReport:
    """Run ``scenario`` on both sides and compare."""
    baseline = _run_side(scenario, scenario.regimes[0])
    candidate = _run_side(scenario, scenario.regimes[1])
    return DiffReport(
        scenario=scenario,
        baseline=baseline,
        candidate=candidate,
        failures=compare_sides(baseline, candidate),
    )


#: Scenarios `repro validate` runs by default.
DIFFERENTIAL_SCENARIOS = (
    DiffScenario(name="udp_fixed_small", proto="udp", message_size=512, rate_pps=40_000.0),
    DiffScenario(
        name="udp_fixed_fragmented",
        proto="udp",
        message_size=4096,
        rate_pps=8_000.0,
        flows=1,
    ),
    DiffScenario(
        name="tcp_paced_4k",
        proto="tcp",
        message_size=4096,
        rate_pps=10_000.0,
        flows=1,
        window_msgs=64,
    ),
    # The fast-path cache skips the slow device chain on hits; the
    # ordering gate must keep delivery semantics identical to vanilla
    # (same payload sets, same per-flow order, zero reorders).
    DiffScenario(
        name="udp_fixed_oncache",
        proto="udp",
        message_size=512,
        rate_pps=40_000.0,
        regimes=("vanilla", "oncache"),
    ),
    DiffScenario(
        name="udp_fixed_oncache_falcon",
        proto="udp",
        message_size=512,
        rate_pps=40_000.0,
        regimes=("vanilla", "oncache_falcon"),
    ),
    DiffScenario(
        name="tcp_paced_oncache",
        proto="tcp",
        message_size=4096,
        rate_pps=10_000.0,
        flows=1,
        window_msgs=64,
        regimes=("vanilla", "oncache"),
    ),
)
