"""Run every figure reproduction and save the rendered tables.

Usage::

    python -m repro.experiments.run_all [--quick] [--out results/] [--only fig10,...]

Each figure's tables are printed and written to ``<out>/<figure>.txt``;
a combined ``ALL.txt`` is written at the end. These files are the
measured counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import importlib
import os
import time
from typing import List

from repro.analysis.pragmas import lint_exempt


@lint_exempt(
    "SIM101",
    reason="harness self-timing: measures how long figure generation takes "
    "on the host; never feeds simulated time or results",
)
def wall_seconds() -> float:
    """Wall-clock timestamp (seconds) for harness progress reporting.

    The single sanctioned wall-clock read in the tree — everything under
    simulated time must use ``sim.now`` (enforced by simlint SIM101).
    """
    return time.time()


FIGURES: List[str] = [
    "fig02_motivation",
    "fig04_interrupts",
    "fig05_serialization",
    "fig06_flamegraph",
    "fig09_splitting",
    "fig10_udp_stress",
    "fig11_cpu_util",
    "fig12_latency",
    "fig13_multiflow",
    "fig14_multicontainer",
    "fig15_threshold",
    "fig16_adaptability",
    "fig17_webserving",
    "fig18_datacaching",
    "fig19_overhead",
    "fig20_shard_scaling",
    "fig21_flowcache",
]


def run_all(quick: bool = False, out_dir: str = "results", only=None) -> List[str]:
    os.makedirs(out_dir, exist_ok=True)
    selected = FIGURES if not only else [f for f in FIGURES if f in only]
    rendered_all = []
    for name in selected:
        module = importlib.import_module(f"repro.experiments.{name}")
        started = wall_seconds()
        output = module.run(quick=quick)
        elapsed = wall_seconds() - started
        text = output.render() + f"\n\n[completed in {elapsed:.1f}s]\n"
        path = os.path.join(out_dir, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text)
        print(text)
        rendered_all.append(text)
    with open(os.path.join(out_dir, "ALL.txt"), "w") as handle:
        handle.write("\n\n".join(rendered_all))
    return rendered_all


def main() -> None:  # pragma: no cover - CLI entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="reduced sweeps")
    parser.add_argument("--out", default="results", help="output directory")
    parser.add_argument(
        "--only", default=None, help="comma-separated figure list (e.g. fig10_udp_stress)"
    )
    args = parser.parse_args()
    only = set(args.only.split(",")) if args.only else None
    run_all(quick=args.quick, out_dir=args.out, only=only)


if __name__ == "__main__":  # pragma: no cover
    main()
