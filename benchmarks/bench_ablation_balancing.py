"""Ablation: CPU-selection policy (two-choice vs static vs least-loaded).

Beyond Figure 16's static-vs-dynamic comparison, this ablation includes
the aggressive least-loaded strawman the paper argues against
(Section 4.3: stale per-packet load data makes chasing the minimum
fluctuate) and sweeps several seeds so hash luck doesn't decide.
"""

import pytest
from conftest import QUICK

from repro.metrics.report import Table
from repro.workloads.multiflow import run_hotspot

POLICIES = ("static", "two_choice", "least_loaded")
SEEDS = (0,) if QUICK else (0, 1, 2, 3)


def test_ablation_balancing_policies(benchmark):
    def run():
        results = {}
        for policy in POLICIES:
            runs = [
                run_hotspot(
                    policy,
                    seed=seed,
                    duration_ms=8 if QUICK else 20,
                    warmup_ms=4 if QUICK else 8,
                    burst_at_ms=2 if QUICK else 8,
                )
                for seed in SEEDS
            ]
            results[policy] = runs
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table = Table(
        ["policy", "mean kpps", "worst kpps", "mean p99 us", "reorders"],
        title="hotspot scenario by balancing policy",
    )
    means = {}
    for policy, runs in results.items():
        rates = [r.message_rate_pps for r in runs]
        p99s = [r.latency["p99"] for r in runs]
        reorders = sum(r.reordered_messages for r in runs)
        means[policy] = sum(rates) / len(rates)
        table.add_row(
            policy, means[policy] / 1e3, min(rates) / 1e3,
            sum(p99s) / len(p99s), reorders,
        )
    print()
    print(table.render())

    # Two-choice resolves the hotspot better than static hashing.
    assert means["two_choice"] >= means["static"]
    # And the static policy never reorders (stable decisions).
    assert all(r.reordered_messages == 0 for r in results["static"])
