"""Figure 10 — UDP single-flow stress: Host vs Con vs Falcon."""

from conftest import run_figure

from repro.experiments import fig10_udp_stress


def test_fig10_udp_stress(benchmark, quick):
    out = run_figure(benchmark, fig10_udp_stress, quick)

    for key, series in out.series.items():
        kernel, bandwidth = key
        for size, values in series.items():
            # Falcon always lands between the vanilla overlay and the host.
            assert values["Falcon"] >= values["Con"] * 0.95, (key, size)
            # The vanilla overlay never beats the host.
            assert values["Con"] <= values["Host"] * 1.05, (key, size)

    # Headline: at 100G / 16 B, Falcon reaches a large fraction of native
    # while the vanilla overlay stays far behind.
    series = out.series[("4.19", 100.0)]
    values = series[16]
    assert values["Falcon"] > 0.75 * values["Host"]
    assert values["Con"] < 0.55 * values["Host"]
