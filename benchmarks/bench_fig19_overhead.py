"""Figure 19 — Falcon's overhead: CPU usage and softirq counts."""

from conftest import run_figure

from repro.experiments import fig19_overhead


def test_fig19_overhead(benchmark, quick):
    out = run_figure(benchmark, fig19_overhead, quick)

    for rate, data in out.series["by_rate"].items():
        cpu = data["cpu"]
        raises = data["raises"]
        # Falcon triggers more softirq raises than the vanilla overlay
        # (it splits one softirq into several smaller ones)...
        assert raises["Falcon"] > raises["Con"]
        # ...but its total CPU cost stays close to the vanilla overlay
        # (the paper: <= ~10% more at high rates).
        assert cpu["Falcon"] < 1.25 * cpu["Con"], rate
        # Both overlay variants cost more than the native host network.
        assert cpu["Con"] > cpu["Host"]
