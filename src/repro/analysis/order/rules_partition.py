"""Partition-invariance taint analysis (ORD501, ORD502, ORD503).

The shard-equivalence contract — an N-shard run is byte-identical to the
1-shard run — holds only while nothing the simulation computes depends
on *how hosts were grouped into shards*. Shard slots, worker indexes,
process ids and pipe file descriptors all change with the partition (and
with the OS), so any of them flowing into the event timeline silently
breaks 1-vs-N equivalence in a way the runtime suite can only catch for
the partitions it happens to run.

This analysis reuses the simflow CFG/worklist engine to propagate one
taint tag — *partition-variant* — forward through each function:

* **sources**: names whose segments spell a shard/worker identity
  (``shard_id``, ``worker_index``, ``shard_slot``, ...), ``pid``-named
  values, and calls to ``os.getpid``/``os.getppid``/``.fileno()``;
* **propagation**: assignment, arithmetic, tuple/collection packing,
  subscripts, conditional expressions and the transparent builtins
  (``min``/``max``/...) — taint survives all of them;
* **sinks** (one rule each):

  ``ORD501``  a tainted value becomes an event **timestamp** — the first
              argument of a scheduler call (``post``/``post_at``/...) or
              of an outbox ``emit``/``CrossShardEvent`` construction;
  ``ORD502``  a tainted value becomes a **seed** — any ``seed=`` keyword
              or an argument of ``seed``/``Random``/``default_rng``/
              ``stream`` calls (RNG stream *names* are part of the
              deterministic state too);
  ``ORD503``  a tainted value enters a cross-shard record's **payload or
              merge key** — a non-time argument of ``emit``/
              ``CrossShardEvent``, or a callback argument of a scheduler
              call (which the event carries as payload).

Like the TIME rules this is a must-style pass: untainted values never
produce noise, and unknown calls do not launder taint through (they
return untainted — a deliberate under-approximation that keeps the
in-tree false-positive budget at zero).

:mod:`repro.sim.shard.transport` is carved out via ``Rule.exempt``: it
is the one sanctioned OS-facing module, whose whole business is pids,
pipes and fds — none of which it ever hands to the simulation (the
records it moves are validated by ``CrossShardEvent.from_wire``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.analysis.flow.cfg import Cfg, build_cfg
from repro.analysis.flow.engine import fixpoint, walk_block
from repro.analysis.flow.rules_time import _RawFinding
from repro.analysis.lint.core import (
    SIMULATED_SCOPE,
    FileContext,
    Finding,
    Project,
    Rule,
)

#: Abstract state: variable name -> taint tags (only ``PARTITION`` here,
#: but kept set-valued to share the engine's join shape with rules_time).
State = Dict[str, FrozenSet[str]]

PARTITION = "partition"
EMPTY: FrozenSet[str] = frozenset()
TAINTED: FrozenSet[str] = frozenset((PARTITION,))

#: Identity-ish trailing segments: ``shard``/``worker`` followed by one
#: of these spells a partition-variant identity.
_ID_SEGMENTS = frozenset(
    ("id", "ids", "idx", "index", "indexes", "indices", "slot", "slots", "rank")
)

#: Calls that return partition/OS-variant values.
_SOURCE_CALLS = ("getpid", "getppid", "fileno")

#: Scheduler calls: arg0 is a timestamp, the rest ride in the event.
_SCHEDULER_CALLS = (
    "schedule",
    "schedule_at",
    "post",
    "post_at",
    "post_batch",
    "submit",
    "submit_multi",
)

#: Cross-shard record sinks: arg0 is the merge-key timestamp, the rest
#: are (src, seq, kind, dst, payload) — all of them merge-key or payload.
_RECORD_SINKS = ("emit", "CrossShardEvent")

#: Calls whose arguments seed deterministic randomness.
_SEED_CALLS = ("seed", "Random", "default_rng", "stream")

#: Taint-transparent builtins (same set the TIME rules use).
_TRANSPARENT_CALLS = ("min", "max", "abs", "round", "sum", "float", "int", "str")


def partition_tainted_name(name: str) -> bool:
    """True when ``name`` spells a partition-variant identity."""
    segments = [seg for seg in name.lower().strip("_").split("_") if seg]
    if "pid" in segments or "ppid" in segments:
        return True
    for left, right in zip(segments, segments[1:]):
        if left in ("shard", "worker") and right in _ID_SEGMENTS:
            return True
    return False


def _name_tags(name: str) -> FrozenSet[str]:
    return TAINTED if partition_tainted_name(name) else EMPTY


class _PartitionAnalysis:
    """Forward partition-taint propagation over one function's CFG."""

    def __init__(
        self,
        ctx: FileContext,
        func: "ast.FunctionDef | ast.AsyncFunctionDef",
        report: Optional[List[_RawFinding]] = None,
    ) -> None:
        self.ctx = ctx
        self.func = func
        self.report = report

    # -- engine contract ------------------------------------------------
    def initial(self, cfg: Cfg) -> State:
        state: State = {}
        args = cfg.func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if partition_tainted_name(arg.arg):
                state[arg.arg] = TAINTED
        return state

    def join(self, a: State, b: State) -> State:
        if a == b:
            return a
        out = dict(a)
        for key, value in b.items():
            existing = out.get(key)
            out[key] = value if existing is None else existing | value
        return out

    def transfer(self, stmt: ast.stmt, state: State) -> State:
        state = dict(state)
        if isinstance(stmt, ast.Assign):
            tags = self._eval(stmt.value, state)
            for target in stmt.targets:
                self._bind(target, tags, state)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, state), state)
        elif isinstance(stmt, ast.AugAssign):
            tags = self._eval(stmt.value, state)
            if isinstance(stmt.target, ast.Name):
                tags |= state.get(stmt.target.id, EMPTY)
            self._bind(stmt.target, tags, state)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value, state)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, state)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, state)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            tags = self._eval(stmt.iter, state)
            self._bind(stmt.target, tags, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr, state)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, EMPTY, state)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, state)
        return state

    # -- binding --------------------------------------------------------
    def _bind(self, target: ast.expr, tags: FrozenSet[str], state: State) -> None:
        if isinstance(target, ast.Name):
            if tags or partition_tainted_name(target.id):
                state[target.id] = tags | _name_tags(target.id)
            else:
                state.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            # A tainted unpack taints every element (conservative).
            for element in target.elts:
                self._bind(element, tags, state)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags, state)
        # Attribute/Subscript targets are not tracked.

    # -- expression evaluation ------------------------------------------
    def _eval(self, expr: ast.expr, state: State) -> FrozenSet[str]:
        if isinstance(expr, ast.Name):
            return state.get(expr.id) or _name_tags(expr.id)
        if isinstance(expr, ast.Attribute):
            self._eval(expr.value, state)
            return _name_tags(expr.attr)
        if isinstance(expr, ast.BinOp):
            return self._eval(expr.left, state) | self._eval(expr.right, state)
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, state)
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, state)
            return self._eval(expr.body, state) | self._eval(expr.orelse, state)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, state)
        if isinstance(expr, ast.Compare):
            self._eval(expr.left, state)
            for comparator in expr.comparators:
                self._eval(comparator, state)
            return EMPTY
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            merged: FrozenSet[str] = EMPTY
            for element in expr.elts:
                merged |= self._eval(element, state)
            return merged
        if isinstance(expr, ast.Dict):
            merged = EMPTY
            for key in expr.keys:
                if key is not None:
                    merged |= self._eval(key, state)
            for value in expr.values:
                merged |= self._eval(value, state)
            return merged
        if isinstance(expr, ast.Subscript):
            # ``pair[0]`` of a tainted tuple stays tainted.
            tags = self._eval(expr.value, state)
            if isinstance(expr.slice, ast.expr):
                self._eval(expr.slice, state)
            return tags
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, state)
        if isinstance(expr, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    self._eval(child, state)
            return EMPTY
        return EMPTY

    def _eval_call(self, call: ast.Call, state: State) -> FrozenSet[str]:
        callee = call.func
        name = (
            callee.attr
            if isinstance(callee, ast.Attribute)
            else callee.id if isinstance(callee, ast.Name) else None
        )
        positional = [self._eval(arg, state) for arg in call.args]
        keywords = [(kw, self._eval(kw.value, state)) for kw in call.keywords]

        # --- seed sinks (ORD502) ---------------------------------------
        for kw, tags in keywords:
            if kw.arg == "seed" and PARTITION in tags:
                self._emit(
                    kw.value,
                    "ORD502",
                    "partition-variant value flows into a seed= keyword — "
                    "seeds must be a pure function of config + global host "
                    "identity, never of the shard layout",
                )
        if name in _SEED_CALLS:
            for arg, tags in zip(call.args, positional):
                if PARTITION in tags:
                    self._emit(
                        arg,
                        "ORD502",
                        f"partition-variant value flows into '{name}' — RNG "
                        "seeds/streams are part of the deterministic state "
                        "and must not depend on the shard layout",
                    )

        # --- record sinks (ORD501 timestamp, ORD503 merge key/payload) -
        if name in _RECORD_SINKS and len(call.args) >= 3:
            for index, (arg, tags) in enumerate(zip(call.args, positional)):
                if PARTITION not in tags:
                    continue
                if index == 0:
                    self._emit(
                        arg,
                        "ORD501",
                        f"partition-variant value becomes the '{name}' "
                        "timestamp — record times are merge keys and must "
                        "be identical under every shard layout",
                    )
                else:
                    self._emit(
                        arg,
                        "ORD503",
                        f"partition-variant value enters a '{name}' "
                        "merge key / payload — the (time, src, seq) order "
                        "and record contents must not depend on the shard "
                        "layout",
                    )
            for kw, tags in keywords:
                if kw.arg != "seed" and PARTITION in tags:
                    self._emit(
                        kw.value,
                        "ORD503",
                        f"partition-variant value enters a '{name}' "
                        "merge key / payload — record contents must not "
                        "depend on the shard layout",
                    )

        # --- scheduler sinks (ORD501 time arg, ORD503 event payload) ---
        elif name in _SCHEDULER_CALLS:
            for index, (arg, tags) in enumerate(zip(call.args, positional)):
                if PARTITION not in tags:
                    continue
                if index == 0:
                    self._emit(
                        arg,
                        "ORD501",
                        f"partition-variant value becomes the '{name}' "
                        "event time — the event timeline must be identical "
                        "under every shard layout",
                    )
                else:
                    self._emit(
                        arg,
                        "ORD503",
                        f"partition-variant value rides into the event "
                        f"stream through '{name}' — event payloads must "
                        "not depend on the shard layout",
                    )

        # --- sources / propagation -------------------------------------
        if name in _SOURCE_CALLS:
            return TAINTED
        if name in _TRANSPARENT_CALLS:
            merged: FrozenSet[str] = EMPTY
            for tags in positional:
                merged |= tags
            for _kw, tags in keywords:
                merged |= tags
            return merged
        return EMPTY

    def _emit(self, node: ast.AST, rule: str, message: str) -> None:
        if self.report is None:
            return
        self.report.append(
            _RawFinding(
                path=self.ctx.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )


#: Per-project memo so all three ORD50x rules run the analysis once.
_FINDINGS_CACHE: Dict[int, List[_RawFinding]] = {}


def partition_findings(project: Project) -> List[_RawFinding]:
    key = id(project)
    cached = _FINDINGS_CACHE.get(key)
    if cached is not None:
        return cached
    report: List[_RawFinding] = []
    for ctx in project.files:
        if ctx.tree is None:
            continue
        for func in ctx.functions():
            cfg = build_cfg(func)
            silent = _PartitionAnalysis(ctx, func, report=None)
            states = fixpoint(cfg, silent)
            reporter = _PartitionAnalysis(ctx, func, report=report)
            walk_block(cfg, states, reporter, lambda stmt, state: None)
    unique = sorted(
        set(report), key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
    )
    _FINDINGS_CACHE.clear()
    _FINDINGS_CACHE[key] = unique
    return unique


class _PartitionRuleBase(Rule):
    scope = SIMULATED_SCOPE
    #: The transport is the sanctioned OS-facing module: pids/pipes/fds
    #: are its whole job, and nothing it computes from them enters the
    #: simulation (records are re-validated by CrossShardEvent.from_wire).
    exempt = ("repro.sim.shard.transport",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        by_path = {ctx.path: ctx for ctx in project.files}
        for raw in partition_findings(project):
            if raw.rule != self.id:
                continue
            ctx = by_path.get(raw.path)
            if ctx is not None and not self.applies_to(ctx.module):
                continue
            yield Finding(
                path=raw.path,
                line=raw.line,
                col=raw.col,
                rule=raw.rule,
                message=raw.message,
            )


class PartitionTimestampRule(_PartitionRuleBase):
    id = "ORD501"
    title = "shard/worker identity must not reach event timestamps"
    rationale = (
        "Cross-shard records merge in (time, src, seq) order; the 1-vs-N "
        "equivalence suite demands byte-identical traces. A timestamp "
        "skewed by a shard slot, worker index or pid reorders the merged "
        "timeline only for some partitions — the exact bug class the "
        "static pass exists to rule out."
    )


class PartitionSeedRule(_PartitionRuleBase):
    id = "ORD502"
    title = "shard/worker identity must not reach seeds or RNG streams"
    rationale = (
        "Every RNG in the simulation is seeded from (spec.seed, global "
        "host identity) so a host behaves identically no matter which "
        "shard simulates it. Mixing in a shard id or os.getpid() gives "
        "each partition its own random universe and quietly voids the "
        "shard-equivalence guarantee."
    )


class PartitionPayloadRule(_PartitionRuleBase):
    id = "ORD503"
    title = "shard/worker identity must not reach record payloads/merge keys"
    rationale = (
        "The (time, src, seq) merge key and the record payload are the "
        "entire cross-shard protocol. A worker index leaking into either "
        "makes the receiving shard observe different bytes depending on "
        "the partition — undetectable at runtime unless that exact "
        "layout is in the test matrix."
    )


PARTITION_RULES: Tuple[Rule, ...] = (
    PartitionTimestampRule(),
    PartitionSeedRule(),
    PartitionPayloadRule(),
)
